package progopt

import (
	"fmt"
	"io"
	"os"

	"progopt/internal/trace"
)

// TraceOptions enable event recording on an engine (Config.Trace). Recording
// is a pure observer of the simulation: it charges no simulated work, so a
// traced run is bit-identical — results, cycles, every PMU counter — to the
// same run untraced, and identical configurations produce byte-identical
// trace files across runs and GOMAXPROCS (all events carry simulated clocks,
// never host time).
type TraceOptions struct {
	// MaxEventsPerTrack bounds each track's event buffer (default 1<<20).
	// Full tracks deterministically keep their earliest events and count the
	// rest as dropped.
	MaxEventsPerTrack int
}

// Trace is an engine's event recorder: one track per simulated core (vector,
// morsel, pipeline, and storage-tier events), an optimizer track (sampling
// observations and plan decisions with their PMU evidence), and — when a
// Server is built on the engine — per-pool-core and service tracks for
// admission and scheduling events. Obtain it from Engine.Trace.
type Trace struct {
	rec *trace.Recorder
	// cores are the engine's per-core tracks and opt its optimizer decision
	// track.
	cores []*trace.Track
	opt   *trace.Track
}

// newTrace builds the recorder and the engine-side tracks.
func newTrace(opts *TraceOptions, workers int) *Trace {
	rec := trace.New()
	if opts.MaxEventsPerTrack > 0 {
		rec.SetMaxEventsPerTrack(opts.MaxEventsPerTrack)
	}
	cores := make([]*trace.Track, workers)
	for i := range cores {
		cores[i] = rec.NewTrack(fmt.Sprintf("core %d", i))
	}
	return &Trace{rec: rec, cores: cores, opt: rec.NewTrack("optimizer")}
}

// NumEvents returns the number of recorded events across all tracks.
func (t *Trace) NumEvents() int {
	if t == nil {
		return 0
	}
	return t.rec.Events()
}

// Reset discards every recorded event but keeps the tracks, so one engine can
// emit one trace file per query or per experiment.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.rec.Reset()
}

// WriteChrome writes the recorded events as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing: one named thread per
// track, spans as complete events, decisions as instants, 1 trace nanosecond
// per simulated cycle. Output is byte-identical for identical simulations.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("progopt: tracing is not enabled (set Config.Trace)")
	}
	return t.rec.WriteChrome(w)
}

// WriteChromeFile writes the Chrome trace-event JSON to a file.
func (t *Trace) WriteChromeFile(path string) error {
	if t == nil {
		return fmt.Errorf("progopt: tracing is not enabled (set Config.Trace)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Trace returns the engine's event recorder, or nil when Config.Trace was not
// set.
func (e *Engine) Trace() *Trace { return e.tr }

// TraceAgg is one line of a per-query trace summary: every occurrence of one
// event name during the query, with span cycles totaled. Reported by Explain
// for the most recently traced execution of a query.
type TraceAgg struct {
	// Name is the event name ("vector", "reorder", "tier-fetch", ...).
	Name string
	// Count is the number of occurrences and Cycles the summed span length
	// (instant events contribute 0).
	Count int
	// Cycles is the total simulated span length.
	Cycles uint64
}

// summarizeTrace converts recorder aggregates to the public type.
func summarizeTrace(aggs []trace.NameAgg) []TraceAgg {
	out := make([]TraceAgg, len(aggs))
	for i, a := range aggs {
		out[i] = TraceAgg{Name: a.Name, Count: a.Count, Cycles: a.Cycles}
	}
	return out
}
