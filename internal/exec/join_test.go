package exec

import (
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

func joinDataset(t *testing.T) *tpch.Dataset {
	t.Helper()
	return tpch.MustGenerate(tpch.Config{Lineitems: 40000, Seed: 5})
}

func buildOrdersJoin(t *testing.T, e *Engine, d *tpch.Dataset, dateCut int32) *FKJoin {
	t.Helper()
	filter := &Predicate{Col: d.Orders.Column("o_orderdate"), Op: LE, I: int64(dateCut), Label: "o_orderdate<=cut"}
	j, err := NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), d.NumOrders, filter, "join-orders")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestFKJoinValidation(t *testing.T) {
	d := joinDataset(t)
	e := newEngine(t)
	if _, err := NewFKJoin(e.CPU(), nil, 10, nil, ""); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), 0, nil, ""); err == nil {
		t.Error("zero build rows accepted")
	}
	short := &Predicate{Col: columnar.NewInt64("s", []int64{1}), Op: LT, I: 5}
	if _, err := NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), d.NumOrders, short, ""); err == nil {
		t.Error("undersized filter column accepted")
	}
}

func TestFKJoinCorrectness(t *testing.T) {
	d := joinDataset(t)
	e := newEngine(t)
	cut := tpch.QuantileInt32(d.Orders.Column("o_orderdate"), 0.5)
	j := buildOrdersJoin(t, e, d, cut)
	q := &Query{Table: d.Lineitem, Ops: []Op{j}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: count lineitems whose order qualifies.
	keys := d.Lineitem.Column("l_orderkey").I64()
	dates := d.Orders.Column("o_orderdate").I32()
	var want int64
	for _, k := range keys {
		if dates[k] <= cut {
			want++
		}
	}
	if res.Qualifying != want {
		t.Errorf("join qualifying = %d, want %d", res.Qualifying, want)
	}
	sel := j.JoinSelectivity()
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("join selectivity %v, want ~0.5", sel)
	}
}

func TestFKJoinNilFilterPassesAll(t *testing.T) {
	d := joinDataset(t)
	e := newEngine(t)
	j, err := NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), d.NumOrders, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if j.JoinSelectivity() != 1 {
		t.Error("nil filter selectivity != 1")
	}
	q := &Query{Table: d.Lineitem, Ops: []Op{j}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifying != int64(d.Lineitem.NumRows()) {
		t.Errorf("filterless FK join qualified %d of %d", res.Qualifying, d.Lineitem.NumRows())
	}
}

// TestCoClusteredJoinLocality is the heart of §5.6: probing orders (keys
// nearly sorted in lineitem) must cost far fewer L3 misses than probing part
// (keys uniformly random), for the same probe count.
func TestCoClusteredJoinLocality(t *testing.T) {
	d := joinDataset(t)

	run := func(key *columnar.Column, buildRows int, filterCol *columnar.Column) uint64 {
		e := newEngine(t)
		filter := &Predicate{Col: filterCol, Op: GE, I: 0, Label: "pass"}
		j, err := NewFKJoin(e.CPU(), key, buildRows, filter, "")
		if err != nil {
			t.Fatal(err)
		}
		q := &Query{Table: d.Lineitem, Ops: []Op{j}}
		if err := e.BindQuery(q); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Get(pmu.L3Miss)
	}

	coMisses := run(d.Lineitem.Column("l_orderkey"), d.NumOrders, d.Orders.Column("o_orderdate"))
	// Random join: synthesize a random-key column over a build side as large
	// as orders so the only difference is locality.
	rng := datagen.NewRNG(17)
	randKeys := columnar.NewInt64("rand_key", datagen.UniformInt64(rng, d.Lineitem.NumRows(), 0, int64(d.NumOrders-1)))
	randMisses := run(randKeys, d.NumOrders, d.Orders.Column("o_orderdate"))

	if coMisses*3 >= randMisses {
		t.Errorf("co-clustered join L3 misses %d not ≪ random join %d", coMisses, randMisses)
	}
}

func TestFKJoinPanicsOnOutOfRangeKey(t *testing.T) {
	e := newEngine(t)
	keys := columnar.NewInt64("k", []int64{5})
	keys.Bind(0x100000)
	j, err := NewFKJoin(e.CPU(), keys, 3, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range key did not panic")
		}
	}()
	j.Eval(e.CPU(), 0)
}

func TestJoinAfterSelectionCheaperWhenSelective(t *testing.T) {
	// Pipeline order matters: a selective predicate before the join removes
	// probe work.
	d := joinDataset(t)
	cut := tpch.QuantileInt32(d.Orders.Column("o_orderdate"), 0.9)
	run := func(order []int) uint64 {
		e := newEngine(t)
		j := buildOrdersJoin(t, e, d, cut)
		sel := &Predicate{Col: d.Lineitem.Column("l_quantity"), Op: LE, I: 2, Label: "qty<=2"} // ~4%
		q := &Query{Table: d.Lineitem, Ops: []Op{sel, j}}
		qo, err := q.WithOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.BindQuery(qo); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(qo)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	selFirst := run([]int{0, 1})
	joinFirst := run([]int{1, 0})
	if selFirst >= joinFirst {
		t.Errorf("selection-first %d cycles not below join-first %d", selFirst, joinFirst)
	}
}

func TestInstrumentedRunMatchesPlainAndCostsMore(t *testing.T) {
	tb := testTable(t, 30000)
	plainEng := newEngine(t)
	q := buildQuery(t, tb, plainEng, 40, 60)
	plain, err := plainEng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	instEng := newEngine(t)
	inst, oc, err := instEng.RunInstrumented(q)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Qualifying != plain.Qualifying || inst.Sum != plain.Sum {
		t.Error("instrumented run changed results")
	}
	if inst.Cycles <= plain.Cycles {
		t.Errorf("instrumented %d cycles not above plain %d", inst.Cycles, plain.Cycles)
	}
	// Counter semantics: op0 evaluated for every tuple; op1 for op0's passes.
	if oc.Evaluated[0] != int64(tb.NumRows()) {
		t.Errorf("op0 evaluated %d, want %d", oc.Evaluated[0], tb.NumRows())
	}
	if oc.Evaluated[1] != oc.Passed[0] {
		t.Errorf("op1 evaluated %d, want op0 passes %d", oc.Evaluated[1], oc.Passed[0])
	}
	if oc.Passed[1] != inst.Qualifying {
		t.Errorf("op1 passes %d, want qualifying %d", oc.Passed[1], inst.Qualifying)
	}
	sels := oc.Selectivities()
	if sels[0] < 0.35 || sels[0] > 0.45 {
		t.Errorf("derived selectivity %v, want ~0.4", sels[0])
	}
}

func TestRunInstrumentedValidation(t *testing.T) {
	tb := testTable(t, 100)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 50, 50)
	bad := &OpCounts{Evaluated: make([]int64, 1), Passed: make([]int64, 1)}
	if _, err := e.RunVectorInstrumented(q, 0, 50, bad); err == nil {
		t.Error("mis-sized OpCounts accepted")
	}
	if _, err := e.RunVectorInstrumented(q, 0, 50, nil); err == nil {
		t.Error("nil OpCounts accepted")
	}
}

func TestQ6Builders(t *testing.T) {
	d := joinDataset(t)
	q5, err := Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(q5.Ops) != 5 {
		t.Errorf("Q6 has %d predicates, want 5", len(q5.Ops))
	}
	q4, err := Q6Shipdate(d, d.ShipdateCutoff(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(q4.Ops) != 4 {
		t.Errorf("Q6Shipdate has %d predicates, want 4", len(q4.Ops))
	}

	// Execute Q6 and verify against direct evaluation.
	e := newEngine(t)
	if err := e.BindQuery(q5); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q5)
	if err != nil {
		t.Fatal(err)
	}
	li := d.Lineitem
	ship := li.Column("l_shipdate").I32()
	disc := li.Column("l_discount").F64()
	qty := li.Column("l_quantity").I64()
	price := li.Column("l_extendedprice").F64()
	lo, hi := tpch.Q6ShipdateLo(), tpch.Q6ShipdateHi()
	var want int64
	var wantSum float64
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi &&
			disc[i] >= tpch.Q6DiscountLo-1e-9 && disc[i] <= tpch.Q6DiscountHi+1e-9 &&
			qty[i] < tpch.Q6QuantityBound {
			want++
			wantSum += price[i] * disc[i]
		}
	}
	if res.Qualifying != want {
		t.Errorf("Q6 qualifying = %d, want %d", res.Qualifying, want)
	}
	if diff := res.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Q6 sum = %v, want %v", res.Sum, wantSum)
	}
	if want == 0 {
		t.Error("degenerate test: Q6 selected nothing")
	}
}
