package exec

import (
	"math/rand"
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

// orderInsensitiveEvents are the PMU counts that batch execution must
// preserve exactly: every (operator, row) evaluation performs the same loads
// and retires the same instructions and branch outcomes in both modes, so
// any count that does not depend on access interleaving is identical.
// (Cache hit levels and, on global-history predictors, misprediction
// attribution may legitimately shift with the op-major interleaving; the
// default per-site saturating predictor preserves even the MP counts, which
// the test asserts too.)
var orderInsensitiveEvents = []pmu.Event{
	pmu.BrCond, pmu.BrTaken, pmu.BrNotTaken,
	pmu.BrMPTaken, pmu.BrMPNotTaken, pmu.BrMP,
	pmu.L1Access, pmu.Instructions,
}

// runBothModes executes q identically on two fresh engines — one scalar, one
// batch — and returns both results. Columns are rebound per engine-pair by
// the caller.
func runBothModes(t *testing.T, q *Query, vectorSize int, branchFree bool) (scalar, batch Result) {
	t.Helper()
	run := func(scalarMode bool) Result {
		e := MustEngine(cpu.MustNew(cpu.ScaledXeon()), vectorSize)
		e.SetScalar(scalarMode)
		e.CPU().FlushCaches()
		e.CPU().ResetPredictor()
		var res Result
		var err error
		if branchFree {
			res, err = e.RunBranchFree(q)
		} else {
			res, err = e.Run(q)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(true), run(false)
}

func assertEquivalent(t *testing.T, label string, scalar, batch Result) {
	t.Helper()
	if scalar.Qualifying != batch.Qualifying {
		t.Errorf("%s: qualifying scalar=%d batch=%d", label, scalar.Qualifying, batch.Qualifying)
	}
	if scalar.Sum != batch.Sum { // bit-identical, not approximately equal
		t.Errorf("%s: sum scalar=%v batch=%v", label, scalar.Sum, batch.Sum)
	}
	if scalar.Vectors != batch.Vectors {
		t.Errorf("%s: vectors scalar=%d batch=%d", label, scalar.Vectors, batch.Vectors)
	}
	for _, ev := range orderInsensitiveEvents {
		if s, b := scalar.Counters.Get(ev), batch.Counters.Get(ev); s != b {
			t.Errorf("%s: %v scalar=%d batch=%d", label, ev, s, b)
		}
	}
}

// TestBatchScalarEquivalenceQ6 is the property test of the batch refactor:
// on randomized TPC-H Q6 variants (random shipdate windows, random operator
// permutations, random vector sizes) the batch pipeline produces bit-
// identical Qualifying/Sum and identical PMU load/branch counts to the
// tuple-at-a-time row loop.
func TestBatchScalarEquivalenceQ6(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := tpch.MustGenerate(tpch.Config{Lineitems: 30000, Seed: 11})
	for trial := 0; trial < 8; trial++ {
		lo := int32(9000 + rng.Intn(1000))
		hi := lo + int32(100+rng.Intn(700))
		q, err := Q6ShipdateWindow(d, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		perms := Permutations(len(q.Ops))
		q, err = q.WithOrder(perms[rng.Intn(len(perms))])
		if err != nil {
			t.Fatal(err)
		}
		// Bind once on a throwaway allocator; both engines share addresses.
		if err := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024).BindQuery(q); err != nil {
			t.Fatal(err)
		}
		vs := 256 << rng.Intn(4) // 256..2048
		scalar, batch := runBothModes(t, q, vs, false)
		assertEquivalent(t, "q6", scalar, batch)
		if scalar.Qualifying == 0 {
			t.Error("degenerate trial: no qualifying tuples")
		}
	}
}

// TestBatchScalarEquivalenceBranchFree covers the predicated scan kernels.
func TestBatchScalarEquivalenceBranchFree(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 20000, Seed: 3})
	q, err := Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	scalar, batch := runBothModes(t, q, 512, true)
	assertEquivalent(t, "branch-free", scalar, batch)
}

// TestBatchScalarEquivalenceJoin covers the FK-join batch kernel, including
// an expensive build-side filter.
func TestBatchScalarEquivalenceJoin(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 20000, Seed: 5})
	alloc := cpu.MustNew(cpu.ScaledXeon())
	dateCut := tpch.QuantileInt32(d.Orders.Column("o_orderdate"), 0.4)
	filter := &Predicate{Col: d.Orders.Column("o_orderdate"), Op: LE, I: int64(dateCut), ExtraCostInstr: 7}
	join, err := NewFKJoin(alloc, d.Lineitem.Column("l_orderkey"), d.NumOrders, filter, "join-orders")
	if err != nil {
		t.Fatal(err)
	}
	pred := &Predicate{Col: d.Lineitem.Column("l_quantity"), Op: LT, I: 30}
	price := d.Lineitem.Column("l_extendedprice")
	pf := price.F64()
	q := &Query{
		Table: d.Lineitem,
		Ops:   []Op{pred, join},
		Agg: &Aggregate{
			Cols: []*columnar.Column{price},
			F:    func(row int) float64 { return pf[row] },
		},
	}
	if err := MustEngine(alloc, 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	scalar, batch := runBothModes(t, q, 1024, false)
	assertEquivalent(t, "join", scalar, batch)
	if scalar.Qualifying == 0 {
		t.Error("degenerate configuration: no qualifying tuples")
	}
}

// TestBatchScalarEquivalenceGroupBy covers the hash-aggregate batch path.
func TestBatchScalarEquivalenceGroupBy(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 20000, Seed: 9})
	q := &Query{
		Table: d.Lineitem,
		Ops:   []Op{&Predicate{Col: d.Lineitem.Column("l_quantity"), Op: LE, I: 25}},
	}
	run := func(scalarMode bool) GroupResult {
		e := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
		e.SetScalar(scalarMode)
		if err := e.BindQuery(q); err != nil {
			t.Fatal(err)
		}
		g, err := NewGroupBy(e.CPU(), d.Lineitem.Column("l_quantity"), d.Lineitem.Column("l_extendedprice"), 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunGroupBy(q, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scalar, batch := run(true), run(false)
	if scalar.Qualifying != batch.Qualifying {
		t.Errorf("qualifying scalar=%d batch=%d", scalar.Qualifying, batch.Qualifying)
	}
	if len(scalar.Groups) != len(batch.Groups) {
		t.Fatalf("group count scalar=%d batch=%d", len(scalar.Groups), len(batch.Groups))
	}
	for i := range scalar.Groups {
		if scalar.Groups[i] != batch.Groups[i] {
			t.Errorf("group %d: scalar=%+v batch=%+v", i, scalar.Groups[i], batch.Groups[i])
		}
	}
}

// TestBindQueryTracksBoundState pins the satellite fix: binding state is
// explicit, so BindQuery never re-binds already-bound columns — even one
// legitimately bound at address 0 — and binds late-added unbound columns.
func TestBindQueryTracksBoundState(t *testing.T) {
	tb := columnar.NewTable("t")
	a := columnar.NewInt64("a", []int64{1, 2, 3})
	b := columnar.NewInt64("b", []int64{4, 5, 6})
	tb.MustAddColumn(a)
	tb.MustAddColumn(b)
	a.Bind(0) // address 0 is a legitimate base
	e := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 2)
	q := &Query{Table: tb, Ops: []Op{&Predicate{Col: a, Op: GT, I: 0}}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	if a.Base() != 0 {
		t.Errorf("column bound at 0 was re-bound to %#x", a.Base())
	}
	if !b.Bound() {
		t.Error("unbound column not bound")
	}
	bBase := b.Base()
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	if b.Base() != bBase {
		t.Errorf("re-binding moved column from %#x to %#x", bBase, b.Base())
	}
}
