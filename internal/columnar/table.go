package columnar

import "fmt"

// Table is a named set of equal-length columns.
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, byName: make(map[string]int)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// AddColumn appends a column; its length must match existing columns and its
// name must be unique within the table.
func (t *Table) AddColumn(c *Column) error {
	if c == nil {
		return fmt.Errorf("columnar: nil column added to table %q", t.name)
	}
	if _, dup := t.byName[c.Name()]; dup {
		return fmt.Errorf("columnar: duplicate column %q in table %q", c.Name(), t.name)
	}
	if len(t.cols) > 0 && c.Len() != t.cols[0].Len() {
		return fmt.Errorf("columnar: column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, t.cols[0].Len())
	}
	t.byName[c.Name()] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// MustAddColumn is AddColumn that panics on error, for construction code with
// statically distinct names.
func (t *Table) MustAddColumn(c *Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err)
	}
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.cols[i]
}

// Columns returns the columns in insertion order (shared slice header copy;
// do not mutate).
func (t *Table) Columns() []*Column { return t.cols }

// NumRows returns the row count (0 for an empty table).
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// SizeBytes returns the total storage footprint of all columns.
func (t *Table) SizeBytes() int {
	n := 0
	for _, c := range t.cols {
		n += c.SizeBytes()
	}
	return n
}

// Allocator reserves ranges of the simulated address space (implemented by
// *cpu.CPU; declared here to avoid a dependency cycle).
type Allocator interface {
	Alloc(size int) (uint64, error)
}

// BindAll binds every still-unbound column of the table into the allocator's
// address space. Columns are laid out in insertion order, each in its own
// allocation; columns already bound (by an earlier query over the same table)
// keep their addresses.
func (t *Table) BindAll(a Allocator) error {
	for _, c := range t.cols {
		if c.Bound() {
			continue
		}
		size := c.SizeBytes()
		if size == 0 {
			size = 1 // keep zero-row tables addressable
		}
		base, err := a.Alloc(size)
		if err != nil {
			return fmt.Errorf("columnar: binding column %q: %w", c.Name(), err)
		}
		c.Bind(base)
	}
	return nil
}
