package exec

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// FKJoin probes a build-side table through a foreign-key column and filters
// on a build-side predicate. Because the key is a dense foreign key, every
// probe matches exactly one build row; the operator's selectivity is the
// build-side filter's selectivity.
//
// The probe models a hash join whose table is keyed by the dense FK: the
// bucket index is derived directly from the key, so probe locality mirrors
// key locality — co-clustered probes (lineitem→orders on a bulk-loaded
// table) walk the bucket array and the filter column nearly sequentially,
// while random keys (lineitem→part) hit random lines. This is exactly the
// locality contrast of the paper's §5.5/§5.6 experiments.
type FKJoin struct {
	// Key is the probe-side foreign-key column (values are build row ids, or
	// row ids of the first Via table on a multi-hop probe).
	Key *columnar.Column
	// Via is the chain of intermediate foreign-key columns a multi-hop probe
	// follows before reaching the build side: the value loaded from Key
	// indexes Via[0]'s table, the value loaded there indexes Via[1]'s, and so
	// on; the last hop's value is the build row id. Empty for a direct FK
	// join. Multi-hop probes compile join-graph edges whose source is not the
	// driving table (e.g. lineitem→orders→customer) into the same reorderable
	// driving-row pipeline as every other operator.
	Via []*columnar.Column
	// Filter is the build-side predicate applied to the matched row; nil
	// means the join only pays lookup cost and always passes.
	Filter *Predicate
	// ExtraCostInstr adds per-probe computation (hashing etc.).
	ExtraCostInstr int
	// Label overrides the generated name.
	Label string

	hashBase  uint64
	bucketLen uint64
	buildRows int64
	// viaI64/viaI32 cache each hop column's typed slice for the batch
	// kernels (exactly one is non-nil per hop).
	viaI64 [][]int64
	viaI32 [][]int32
}

// bucketBytes is the modelled size of one hash bucket (key + row pointer).
const bucketBytes = 16

// NewFKJoin builds a direct foreign-key join and reserves the hash-table
// region in the simulated address space. buildRows is the build-side
// cardinality; all key values must lie in [0, buildRows).
func NewFKJoin(alloc columnar.Allocator, key *columnar.Column, buildRows int, filter *Predicate, label string) (*FKJoin, error) {
	return NewFKJoinVia(alloc, key, nil, buildRows, filter, label)
}

// NewFKJoinVia builds a (possibly multi-hop) foreign-key join: the probe
// follows key through each via column in order before indexing the build
// side. buildRows is the final build-side cardinality; each hop's values
// must lie in [0, rows of the next hop's table).
func NewFKJoinVia(alloc columnar.Allocator, key *columnar.Column, via []*columnar.Column, buildRows int, filter *Predicate, label string) (*FKJoin, error) {
	if key == nil {
		return nil, fmt.Errorf("exec: fk join needs a key column")
	}
	if buildRows <= 0 {
		return nil, fmt.Errorf("exec: non-positive build cardinality %d", buildRows)
	}
	if filter != nil && filter.Col.Len() < buildRows {
		return nil, fmt.Errorf("exec: filter column %q has %d rows, build side has %d",
			filter.Col.Name(), filter.Col.Len(), buildRows)
	}
	j := &FKJoin{
		Key:       key,
		Via:       append([]*columnar.Column(nil), via...),
		Filter:    filter,
		Label:     label,
		buildRows: int64(buildRows),
	}
	for _, v := range via {
		if v == nil {
			return nil, fmt.Errorf("exec: fk join has a nil via column")
		}
		i64, i32 := v.I64(), v.I32()
		if i64 == nil && i32 == nil {
			return nil, fmt.Errorf("exec: via column %q must be integer-kind, is %v", v.Name(), v.Kind())
		}
		j.viaI64 = append(j.viaI64, i64)
		j.viaI32 = append(j.viaI32, i32)
	}
	// Bucket array sized to the next power of two.
	buckets := uint64(1)
	for buckets < uint64(buildRows) {
		buckets <<= 1
	}
	base, err := alloc.Alloc(int(buckets) * bucketBytes)
	if err != nil {
		return nil, fmt.Errorf("exec: allocating hash table: %w", err)
	}
	j.hashBase = base
	j.bucketLen = buckets
	return j, nil
}

// hopBound returns the valid index range a key must lie in before hop i (the
// hop table's row count), or the build cardinality past the last hop.
func (j *FKJoin) hopBound(i int) int64 {
	if i < len(j.Via) {
		return int64(j.Via[i].Len())
	}
	return j.buildRows
}

// hopAt resolves hop i's value at row k through the cached typed slices.
func (j *FKJoin) hopAt(i int, k int64) int64 {
	if s := j.viaI64[i]; s != nil {
		return s[k]
	}
	return int64(j.viaI32[i][k])
}

// probeCostInstr is the per-row hash/index arithmetic charge: 2 instructions
// per lookup (the direct probe plus one per intermediate hop).
func (j *FKJoin) probeCostInstr() int { return 2 * (1 + len(j.Via)) }

// Name implements Op.
func (j *FKJoin) Name() string {
	if j.Label != "" {
		return j.Label
	}
	path := j.Key.Name()
	for _, v := range j.Via {
		path += ">" + v.Name()
	}
	if j.Filter != nil {
		return fmt.Sprintf("join[%s, %s]", path, j.Filter.Name())
	}
	return fmt.Sprintf("join[%s]", path)
}

// Width implements Op.
func (j *FKJoin) Width() int { return j.Key.Width() }

// Eval implements Op: load the key, follow any intermediate hops, probe the
// bucket, touch the build row's filter column, and evaluate the filter.
func (j *FKJoin) Eval(c *cpu.CPU, row int) bool {
	c.Load(j.Key.Addr(row))
	key := j.Key.Int64At(row)
	for i, via := range j.Via {
		if key < 0 || key >= int64(via.Len()) {
			panic(keyRangeError(key, int64(via.Len())))
		}
		c.Load(via.Addr(int(key)))
		key = j.hopAt(i, key)
	}
	if key < 0 || key >= j.buildRows {
		panic(keyRangeError(key, j.buildRows))
	}
	// Dense-key hash: bucket = key. Locality of probes mirrors key order.
	bucket := uint64(key) & (j.bucketLen - 1)
	c.Load(j.hashBase + bucket*bucketBytes)
	c.Exec(j.probeCostInstr() + j.ExtraCostInstr) // hash + index arithmetic
	if j.Filter == nil {
		return true
	}
	return j.Filter.Eval(c, int(key))
}

// EvalBatch implements Op: one key load, one bucket probe, and (with a
// filter) one build-side load and comparison per selected row, with the
// per-probe arithmetic charged once for the whole vector. Loads, retired
// instructions, and per-site branch outcomes match Eval exactly.
//
// The data-dependent address stream — bucket probe, then build-side filter
// value, per selected row, in row order — is gathered into the CPU's scratch
// and simulated by one LoadAddrs run, so co-clustered probes collapse into
// counted same-line touches instead of per-row full lookups. Hoisting the
// loads ahead of the branch phase is count-exact: loads touch no predictor
// state and branches touch no cache state.
func (j *FKJoin) EvalBatch(c *cpu.CPU, site int, sel, out []int32) []int32 {
	keys := j.gatherBatch(c, sel)
	if j.Filter == nil {
		// The join branch never fails and retires as one constant-outcome
		// batch.
		c.CondBranchN(site, false, len(sel))
		return append(out, sel...)
	}
	for i, r := range sel {
		ok := j.Filter.passRaw(int(keys[i]))
		c.CondBranch(site, !ok)
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// gatherBatch is the shared gather phase of the batched join kernels (fused
// and unfused — both must simulate byte-identical event streams): the
// per-row arithmetic charges, the run-batched key-column gather, and one
// LoadAddrs call over the data-dependent address stream — intermediate hops,
// bucket probe, and (with a filter) build-side filter value, per selected
// row, in the exact per-row order Eval performs them. Hoisting the loads
// ahead of the branch phase is count-exact: loads touch no predictor state
// and branches touch no cache state. Returns the resolved build row per
// selected row (valid until the CPU's scratch is reused).
func (j *FKJoin) gatherBatch(c *cpu.CPU, sel []int32) []int64 {
	keyBase := j.Key.Base()
	kw := uint64(j.Key.Width())
	c.Exec((j.probeCostInstr() + j.ExtraCostInstr) * len(sel)) // hash + index arithmetic
	if j.Filter != nil && j.Filter.ExtraCostInstr > 0 {
		c.Exec(j.Filter.ExtraCostInstr * len(sel))
	}
	ki64, ki32 := j.Key.I64(), j.Key.I32()
	key := func(r int32) int64 {
		var k int64
		switch {
		case ki64 != nil:
			k = ki64[r]
		case ki32 != nil:
			k = int64(ki32[r])
		default:
			k = j.Key.Int64At(int(r)) // panics for non-integer keys, like Eval
		}
		if k < 0 || k >= j.hopBound(0) {
			panic(keyRangeError(k, j.hopBound(0)))
		}
		return k
	}
	// Key-column gather, run-batched.
	selLoads(c, sel, keyBase, kw)
	perRow := len(j.Via) + 1
	var fBase, fw uint64
	if j.Filter != nil {
		perRow++
		fBase = j.Filter.Col.Base()
		fw = uint64(j.Filter.Col.Width())
	}
	addrs := c.AddrBuf(perRow * len(sel))
	keys := c.KeyBuf(len(sel))
	for _, r := range sel {
		k := key(r)
		for i, via := range j.Via {
			addrs = append(addrs, via.Base()+uint64(k)*uint64(via.Width()))
			k = j.hopAt(i, k)
			if k < 0 || k >= j.hopBound(i+1) {
				panic(keyRangeError(k, j.hopBound(i+1)))
			}
		}
		bucket := uint64(k) & (j.bucketLen - 1)
		addrs = append(addrs, j.hashBase+bucket*bucketBytes)
		if j.Filter != nil {
			addrs = append(addrs, fBase+uint64(k)*fw)
		}
		keys = append(keys, k)
	}
	c.LoadAddrs(addrs)
	return keys
}

// keyRangeError formats the out-of-range FK panic shared by every probe
// path (scalar, batched, fused).
func keyRangeError(key, buildRows int64) string {
	return fmt.Sprintf("exec: fk key %d outside build side [0,%d)", key, buildRows)
}

// JoinSelectivity scans the build-side filter directly (no simulation) and
// returns the probability a probe survives; 1 if the join has no filter.
func (j *FKJoin) JoinSelectivity() float64 {
	if j.Filter == nil {
		return 1
	}
	return j.Filter.TrueSelectivity()
}
