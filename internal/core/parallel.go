package core

import (
	"progopt/internal/exec"
	"progopt/internal/hw/pmu"
)

// ParallelStats reports what the parallel progressive driver did.
type ParallelStats struct {
	Stats
	// Workers is the number of simulated cores.
	Workers int
	// Blocks is the number of morsel blocks (optimization epochs) executed.
	Blocks int
}

// RunParallelProgressive executes the query morsel-driven across the
// parallel executor's cores with progressive re-optimization at block
// granularity: each block spans ReopInterval vectors per core; at every
// block boundary the per-core PMU deltas are merged and the selectivity
// estimator inverts the cost models over the aggregate — summing per-core
// counters is exactly how a multi-core deployment samples its PMUs — then
// operators are reordered by ascending estimate. The next block validates
// the reorder against the previous block's per-vector cost and reverts on
// regression, the parallel analogue of §4.4's vector-level validation.
//
// Estimation runs on core 0 while the other cores idle at the block barrier,
// so its cycle cost extends the makespan; a reorder re-JITs the scan loop on
// every core (predictor reset + recompile charge).
//
// Query results (Qualifying, Sum) are bit-identical to a serial run and
// deterministic across worker counts; because the morsel scheduler runs on
// simulated clocks, cycle counts, counter samples, and optimizer decisions
// are also fully reproducible run to run.
func RunParallelProgressive(p *exec.Parallel, q *exec.Query, opt Options) (exec.Result, ParallelStats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, ParallelStats{}, err
	}
	opt.setDefaults()
	engines := p.Engines()
	w0 := engines[0].CPU()
	if opt.Geometry.LineSize == 0 {
		hier := w0.Profile().Hierarchy
		opt.Geometry.LineSize = hier.L3.LineSize
		opt.Geometry.CapacityLines = hier.L3.Lines()
	}

	nOps := len(q.Ops)
	curPerm := identity(nOps)
	prevPerm := identity(nOps)
	curQ := q
	aggWidths := aggColumnWidths(q)

	startSamples := make([]pmu.Sample, len(engines))
	for i, e := range engines {
		startSamples[i] = e.CPU().Sample()
	}

	n := q.Table.NumRows()
	vs := p.VectorSize()
	numVec := p.NumVectors(q)
	blockVecs := opt.ReopInterval * p.Workers()
	if opt.ReopInterval <= 0 || blockVecs <= 0 {
		blockVecs = numVec // no re-optimization: one block
	}
	if blockVecs <= 0 {
		blockVecs = 1
	}

	var out exec.Result
	st := ParallelStats{Workers: p.Workers()}
	var totalCycles uint64
	prevCostPerVec := -1.0
	pendingValidation := false

	for v0 := 0; v0 < numVec; v0 += blockVecs {
		v1 := v0 + blockVecs
		if v1 > numVec {
			v1 = numVec
		}
		br, err := p.RunBlock(curQ, v0, v1)
		if err != nil {
			return exec.Result{}, ParallelStats{}, err
		}
		st.Blocks++
		out.Qualifying += br.Qualifying
		out.Sum += br.Sum
		out.Vectors += br.Vectors
		totalCycles += br.MaxCycles
		costPerVec := float64(br.MaxCycles) / float64(br.Vectors)

		if pendingValidation && !opt.DisableValidation {
			pendingValidation = false
			if prevCostPerVec > 0 && costPerVec > prevCostPerVec*(1+opt.ValidationTolerance) {
				// Deteriorated: re-establish the previous order on all cores.
				curPerm = append([]int(nil), prevPerm...)
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, ParallelStats{}, err
				}
				totalCycles += recompileAll(p, opt)
				st.Reverts++
			}
		}

		if opt.ReopInterval > 0 && v1 < numVec {
			// Estimation epoch on the coordinator core.
			c0 := w0.Cycles()
			w0.Exec(opt.SampleCostInstr)
			tuples := v1*vs - v0*vs
			if v1*vs > n {
				tuples = n - v0*vs
			}
			sample := SampleFromPMU(br.Counters, tuples)
			cfg := EstimatorConfig{
				Widths:    opWidths(curQ),
				AggWidths: aggWidths,
				Geometry:  opt.Geometry,
				Chain:     opt.Chain,
				MaxStarts: opt.MaxStartsOverride,
			}
			est, err := EstimateSelectivities(sample, cfg)
			if err != nil {
				return exec.Result{}, ParallelStats{}, err
			}
			st.Optimizations++
			st.EstimatorEvaluations += est.NMEvaluations
			st.LastEstimate = est.Sels
			w0.Exec(est.NMEvaluations * opt.NMEvalCostInstr)
			totalCycles += w0.Cycles() - c0

			order := AscendingOrder(est.Sels)
			newPerm := compose(curPerm, order)
			if !equalPerm(newPerm, curPerm) {
				prevPerm = append([]int(nil), curPerm...)
				curPerm = newPerm
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, ParallelStats{}, err
				}
				totalCycles += recompileAll(p, opt)
				st.Reorders++
				pendingValidation = true
			}
		}
		prevCostPerVec = costPerVec
	}

	out.Cycles = totalCycles
	out.Millis = w0.MillisOf(totalCycles)
	var merged pmu.Sample
	for i, e := range engines {
		merged = merged.Add(e.CPU().Sample().Sub(startSamples[i]))
	}
	out.Counters = merged
	st.Vectors = out.Vectors
	st.FinalOrder = curPerm
	return out, st, nil
}

// recompileAll re-JITs the scan loop on every core (new branch addresses,
// re-chained primitives) and returns the resulting makespan extension: the
// largest per-core cycle delta of the recompile.
func recompileAll(p *exec.Parallel, opt Options) uint64 {
	var max uint64
	for _, e := range p.Engines() {
		c := e.CPU()
		c0 := c.Cycles()
		if !opt.DisablePredictorReset {
			c.ResetPredictor()
		}
		c.Exec(opt.ReorderCostInstr)
		if d := c.Cycles() - c0; d > max {
			max = d
		}
	}
	return max
}
