package exec

import "sort"

// groupTable is the host-side accumulator of a grouped aggregation: an
// open-addressing hash table with the group rows stored inline in the slot
// array, replacing the map[int64]*Group of the original implementation. One
// linear-probe lookup lands on a contiguous 32-byte slot that the update
// writes in place — no per-group pointer chase, no per-insert allocation.
//
// The table is a pure host-performance structure: the *simulated* hash table
// the cache hierarchy sees is still GroupBy's reserved address region
// (slotAddr), so PMU counters and cycles are untouched by this layout. Group
// values accumulate per key in exactly the order apply is called — the global
// row order the drivers establish — so sums remain bit-identical to the map
// path, and output is sorted by key, independent of table internals.
type groupTable struct {
	slots []gslot
	mask  uint64
	n     int
}

// gslot is one inline table entry; used distinguishes an occupied slot (keys
// and every Group field are domain values, so no sentinel is available).
type gslot struct {
	g    Group
	used bool
}

// newGroupTable sizes a table for the expected number of distinct groups —
// the Compile-time distinct-domain scan's estimate — at a load factor of at
// most ½ if the estimate holds; growth covers under-estimates.
func newGroupTable(expected int) *groupTable {
	buckets := uint64(16)
	for int(buckets) < 2*expected {
		buckets <<= 1
	}
	return &groupTable{slots: make([]gslot, buckets), mask: buckets - 1}
}

// at returns the group row for key, claiming a slot on first sight. The
// multiplicative hash matches slotAddr's, so host probe locality mirrors the
// simulated table's.
func (t *groupTable) at(key int64) *Group {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	idx := (uint64(key) * 2654435761) & t.mask
	for {
		sl := &t.slots[idx]
		if !sl.used {
			sl.used = true
			sl.g.Key = key
			t.n++
			return &sl.g
		}
		if sl.g.Key == key {
			return &sl.g
		}
		idx = (idx + 1) & t.mask
	}
}

// grow doubles the table, reinserting occupied slots. Group rows move by
// value; accumulated sums and counts are preserved bit for bit.
func (t *groupTable) grow() {
	old := t.slots
	t.slots = make([]gslot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		idx := (uint64(old[i].g.Key) * 2654435761) & t.mask
		for t.slots[idx].used {
			idx = (idx + 1) & t.mask
		}
		t.slots[idx] = old[i]
	}
}

// len returns the number of distinct keys accumulated.
func (t *groupTable) len() int { return t.n }

// groups flattens the table into key-sorted output rows.
func (t *groupTable) groups() []Group {
	out := make([]Group, 0, t.n)
	for i := range t.slots {
		if t.slots[i].used {
			out = append(out, t.slots[i].g)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// sortedKeys returns the accumulated keys in ascending order (the merge
// phase's deterministic iteration order).
func (t *groupTable) sortedKeys() []int64 {
	out := make([]int64, 0, t.n)
	for i := range t.slots {
		if t.slots[i].used {
			out = append(out, t.slots[i].g.Key)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
