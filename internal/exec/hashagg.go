package exec

import (
	"fmt"
	"sort"

	"progopt/internal/columnar"
)

// GroupBy is a hash-based grouping aggregate over the qualifying tuples of a
// query: SELECT group, SUM(value), COUNT(*) ... GROUP BY group. It extends
// the engine beyond pure selections — the paper's future work (§7) names
// integrating further relational operators — and exercises the cache
// substrate with the random-write pattern of hash-table maintenance, which
// the Manegold cost model's r_trav pattern predicts.
type GroupBy struct {
	// GroupCol is the grouping key column (integer-kind).
	GroupCol *columnar.Column
	// ValueCol is the summed column.
	ValueCol *columnar.Column

	tableBase uint64
	mask      uint64
}

// groupSlotBytes models one hash-table slot (key, sum, count).
const groupSlotBytes = 24

// NewGroupBy builds the aggregate and reserves its hash-table region sized
// for the expected number of distinct groups.
func NewGroupBy(alloc columnar.Allocator, group, value *columnar.Column, expectedGroups int) (*GroupBy, error) {
	if group == nil || value == nil {
		return nil, fmt.Errorf("exec: group-by needs group and value columns")
	}
	switch group.Kind() {
	case columnar.Int64, columnar.Int32, columnar.Date:
	default:
		return nil, fmt.Errorf("exec: group column %q must be integer-kind, is %v", group.Name(), group.Kind())
	}
	if expectedGroups <= 0 {
		return nil, fmt.Errorf("exec: non-positive expected group count %d", expectedGroups)
	}
	buckets := uint64(1)
	for buckets < 2*uint64(expectedGroups) {
		buckets <<= 1
	}
	base, err := alloc.Alloc(int(buckets) * groupSlotBytes)
	if err != nil {
		return nil, err
	}
	return &GroupBy{GroupCol: group, ValueCol: value, tableBase: base, mask: buckets - 1}, nil
}

// Group is one output row of a GroupBy.
type Group struct {
	// Key is the group key.
	Key int64
	// Sum is the aggregated value.
	Sum float64
	// Count is the number of contributing tuples.
	Count int64
}

// GroupResult is the grouped output plus execution metrics.
type GroupResult struct {
	// Groups are the output rows, sorted by key.
	Groups []Group
	// Result carries cardinality/cycles/counters of the run.
	Result
}

// groupUpdateCostInstr is the hash-table maintenance cost per qualifying
// tuple (hash, compare key, add, increment).
const groupUpdateCostInstr = 6

// updateGroup simulates and applies one hash-aggregate update for row: the
// hash-table slot access (read-modify-write of key, sum, count) and the
// accumulator maintenance. Column loads are the caller's: per-row in the
// scalar loop, gathered per selection in the batch path.
func (e *Engine) updateGroup(g *GroupBy, acc map[int64]*Group, row int) {
	key := g.GroupCol.Int64At(row)
	bucket := (uint64(key) * 2654435761) & g.mask
	e.cpu.Load(g.tableBase + bucket*groupSlotBytes)
	gr, ok := acc[key]
	if !ok {
		gr = &Group{Key: key}
		acc[key] = gr
	}
	gr.Sum += g.ValueCol.Float64At(row)
	gr.Count++
}

// RunGroupBy executes the query's filters and aggregates survivors into g's
// hash table, vector at a time under the engine's execution mode. The
// query's own Agg is ignored; g defines the aggregation.
func (e *Engine) RunGroupBy(q *Query, g *GroupBy) (GroupResult, error) {
	if err := q.Validate(); err != nil {
		return GroupResult{}, err
	}
	if g == nil {
		return GroupResult{}, fmt.Errorf("exec: nil GroupBy")
	}
	c := e.cpu
	start := c.Sample()
	startCycles := c.Cycles()

	acc := make(map[int64]*Group)
	n := q.Table.NumRows()
	ops := q.Ops
	loopSite := len(ops)
	var out GroupResult
	for lo := 0; lo < n; lo += e.vectorSize {
		hi := lo + e.vectorSize
		if hi > n {
			hi = n
		}
		if e.scalar {
			for row := lo; row < hi; row++ {
				pass := true
				for si := 0; si < len(ops); si++ {
					ok := ops[si].Eval(c, row)
					c.CondBranch(si, !ok)
					if !ok {
						pass = false
						break
					}
				}
				if pass {
					c.Load(g.GroupCol.Addr(row))
					c.Load(g.ValueCol.Addr(row))
					c.Exec(groupUpdateCostInstr)
					e.updateGroup(g, acc, row)
					out.Qualifying++
				}
				c.Exec(loopOverheadInstr)
				c.CondBranch(loopSite, true)
			}
			out.Vectors++
			continue
		}
		sel, err := e.batchSelect(q, lo, hi)
		if err != nil {
			return GroupResult{}, err
		}
		c.LoadSel(g.GroupCol.Base(), g.GroupCol.Width(), sel)
		c.LoadSel(g.ValueCol.Base(), g.ValueCol.Width(), sel)
		for _, r := range sel {
			e.updateGroup(g, acc, int(r))
		}
		c.Exec(groupUpdateCostInstr * len(sel))
		out.Qualifying += int64(len(sel))
		c.Exec(loopOverheadInstr * (hi - lo))
		c.CondBranchN(loopSite, true, hi-lo)
		out.Vectors++
	}

	out.Groups = make([]Group, 0, len(acc))
	for _, gr := range acc {
		out.Groups = append(out.Groups, *gr)
	}
	sort.Slice(out.Groups, func(a, b int) bool { return out.Groups[a].Key < out.Groups[b].Key })
	out.Cycles = c.Cycles() - startCycles
	out.Millis = c.MillisOf(out.Cycles)
	out.Counters = c.Sample().Sub(start)
	return out, nil
}
