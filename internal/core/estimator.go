package core

import (
	"fmt"
	"math"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
	"progopt/internal/hw/pmu"
)

// CounterSample carries the per-interval PMU readings the estimator inverts:
// the paper's four counters plus the two exact cardinalities derived from
// them (§4.1).
type CounterSample struct {
	// N is the number of tuples executed in the sampled interval.
	N float64
	// BNT is branches not taken.
	BNT float64
	// MPTaken and MPNotTaken are the misprediction counters.
	MPTaken, MPNotTaken float64
	// L3 is the L3-access counter (demand + prefetch).
	L3 float64
	// Qualifying is the output cardinality, 2n - branchesTaken (§2.2.1).
	Qualifying float64
}

// SampleFromPMU derives a CounterSample from a PMU delta over n tuples.
func SampleFromPMU(delta pmu.Sample, n int) CounterSample {
	qual := 2*float64(n) - float64(delta.Get(pmu.BrTaken))
	if qual < 0 {
		qual = 0
	}
	if qual > float64(n) {
		qual = float64(n)
	}
	return CounterSample{
		N:          float64(n),
		BNT:        float64(delta.Get(pmu.BrNotTaken)),
		MPTaken:    float64(delta.Get(pmu.BrMPTaken)),
		MPNotTaken: float64(delta.Get(pmu.BrMPNotTaken)),
		L3:         float64(delta.Get(pmu.L3Access)),
		Qualifying: qual,
	}
}

// EstimatorConfig configures selectivity estimation for one PEO.
type EstimatorConfig struct {
	// Widths are the operator input widths in current evaluation order.
	Widths []int
	// AggWidths are aggregation column widths.
	AggWidths []int
	// Geometry models the L3 level.
	Geometry cachemodel.Geometry
	// Chain models the branch predictor.
	Chain markov.Chain
	// MaxIterNM bounds Nelder-Mead iterations per start (default 10000, the
	// paper's best setting).
	MaxIterNM int
	// AbsTol is the paper's absolute tolerance of 1 between iterations,
	// applied to the raw counter-difference objective of Eq. (10).
	AbsTol float64
	// NoImproveLimit stops after this many consecutive starts without
	// improvement (the paper's n < 5; default 4).
	NoImproveLimit int
	// MaxStarts bounds the number of start points (the paper's m = 2p;
	// default 2*len(Widths)).
	MaxStarts int
	// Weights scales each counter's contribution to the Eq. (10) objective;
	// nil weights every counter at 1 (the paper's choice). Used by the
	// counter-subset ablation.
	Weights *CounterWeights
}

// CounterWeights scales the four counters in the estimation objective.
type CounterWeights struct {
	BNT, L3, MPNotTaken, MPTaken float64
}

func (c *EstimatorConfig) setDefaults() {
	if c.MaxIterNM <= 0 {
		c.MaxIterNM = 10000
	}
	if c.AbsTol <= 0 {
		c.AbsTol = 1
	}
	if c.NoImproveLimit <= 0 {
		c.NoImproveLimit = 4
	}
	if c.MaxStarts <= 0 {
		c.MaxStarts = 2 * len(c.Widths)
	}
	if c.Chain.States() == 0 {
		c.Chain = markov.Paper()
	}
	if c.Geometry.LineSize == 0 {
		c.Geometry = cachemodel.MustGeometry(64, 16384)
	}
}

// Estimation is the estimator's output.
type Estimation struct {
	// Sels are the estimated per-predicate selectivities in evaluation order.
	Sels []float64
	// Products are the cumulative selectivity products (accesses/tupsIn).
	Products []float64
	// Cost is the Eq. (10) objective at the estimate.
	Cost float64
	// Starts is the number of start points tried.
	Starts int
	// NMEvaluations counts objective evaluations across all starts — the
	// optimization work the progressive driver charges to the CPU.
	NMEvaluations int
}

// EstimateSelectivities inverts the counter cost models: it searches the
// (bounded, §4.1) space of cumulative selectivity products for the vector
// whose predicted counters (§3) best match the sample, using Nelder-Mead
// restarts over the §4.3 start-point sequence.
//
// The paper's Eq. (10) literally sums signed differences, which would cancel
// opposite-signed errors; we sum absolute differences, which is evidently
// the intent (and is what makes the minimum meaningful).
func EstimateSelectivities(s CounterSample, cfg EstimatorConfig) (Estimation, error) {
	p := len(cfg.Widths)
	if p == 0 {
		return Estimation{}, fmt.Errorf("core: no operators to estimate")
	}
	if s.N <= 0 {
		return Estimation{}, fmt.Errorf("core: non-positive sample size %v", s.N)
	}
	cfg.setDefaults()
	qualFrac := s.Qualifying / s.N
	if qualFrac < 0 {
		qualFrac = 0
	}
	if qualFrac > 1 {
		qualFrac = 1
	}
	if p == 1 {
		return Estimation{
			Sels:     []float64{qualFrac},
			Products: []float64{qualFrac},
			Cost:     0,
			Starts:   0,
		}, nil
	}

	bounds, err := Restrict(p, s.N, s.Qualifying, s.BNT)
	if err != nil {
		return Estimation{}, err
	}
	prodLo, prodHi := bounds.ProductBounds()
	// The last product is pinned to the exact output fraction; only the
	// first p-1 products are free.
	lo, hi := prodLo[:p-1], prodHi[:p-1]

	params := peo.Params{
		N:         int(s.N),
		Widths:    cfg.Widths,
		AggWidths: cfg.AggWidths,
		Geometry:  cfg.Geometry,
		Chain:     cfg.Chain,
	}

	evals := 0
	selsOf := func(x []float64) ([]float64, float64) {
		sels := make([]float64, p)
		penalty := 0.0
		prev := 1.0
		for i := 0; i < p; i++ {
			var prod float64
			if i < p-1 {
				prod = x[i]
			} else {
				prod = qualFrac
			}
			if prod > prev {
				penalty += (prod - prev) * s.N * 10
				prod = prev
			}
			if prev <= 0 {
				sels[i] = 0
			} else {
				sels[i] = prod / prev
			}
			if sels[i] > 1 {
				sels[i] = 1
			}
			if sels[i] < 0 {
				sels[i] = 0
			}
			prev = prod
		}
		return sels, penalty
	}
	w := cfg.Weights
	if w == nil {
		w = &CounterWeights{BNT: 1, L3: 1, MPNotTaken: 1, MPTaken: 1}
	}
	objective := func(x []float64) float64 {
		evals++
		sels, penalty := selsOf(x)
		est, err := peo.Counters(params, sels)
		if err != nil {
			return math.Inf(1)
		}
		return w.BNT*math.Abs(s.BNT-est.BNT) +
			w.L3*math.Abs(s.L3-est.L3) +
			w.MPNotTaken*math.Abs(s.MPNotTaken-est.MPNotTaken) +
			w.MPTaken*math.Abs(s.MPTaken-est.MPTaken) +
			penalty
	}

	// Null hypothesis: overall selectivity splits evenly, so products decay
	// geometrically toward qualFrac.
	null := make([]float64, p-1)
	perPred := math.Pow(math.Max(qualFrac, 1e-12), 1/float64(p))
	prod := 1.0
	for i := range null {
		prod *= perPred
		null[i] = prod
	}
	gen, err := NewStartPointGen(lo, hi, null)
	if err != nil {
		return Estimation{}, err
	}

	best := Estimation{Cost: math.Inf(1)}
	noImprove := 0
	starts := 0
	for starts < cfg.MaxStarts && noImprove < cfg.NoImproveLimit {
		x0 := gen.Next()
		res, err := NelderMead(objective, x0, NMOptions{
			MaxIter: cfg.MaxIterNM,
			AbsTol:  cfg.AbsTol,
			Lo:      lo,
			Hi:      hi,
		})
		if err != nil {
			return Estimation{}, err
		}
		starts++
		if res.F < best.Cost-cfg.AbsTol {
			sels, _ := selsOf(res.X)
			products := make([]float64, p)
			pr := 1.0
			for i, sl := range sels {
				pr *= sl
				products[i] = pr
			}
			best = Estimation{Sels: sels, Products: products, Cost: res.F}
			noImprove = 0
			// A start that drove the counter mismatch below the tolerance
			// cannot be improved upon meaningfully; stop early to keep the
			// run-time optimization budget small (§4.4's trade-off).
			if best.Cost <= cfg.AbsTol {
				break
			}
		} else {
			noImprove++
		}
	}
	best.Starts = starts
	best.NMEvaluations = evals
	if best.Sels == nil {
		// Every start failed to beat +Inf (cannot happen with a finite
		// objective, but stay defensive): fall back to the null hypothesis.
		sels, _ := selsOf(null)
		best.Sels = sels
	}
	return best, nil
}

// AscendingOrder returns the positions of sels sorted by increasing
// selectivity — the reorder the paper applies after estimation (most
// selective predicate first).
func AscendingOrder(sels []float64) []int {
	idx := make([]int, len(sels))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && sels[idx[j]] < sels[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
