package core

import (
	"math"
	"testing"

	"progopt/internal/exec"
	"progopt/internal/tpch"
)

func TestChooseImpl(t *testing.T) {
	p := DefaultImplCostParams()
	// Very selective first predicate over a deeper PEO: branching
	// short-circuits away most work and mispredicts little.
	if got := ChooseImpl([]float64{0.01, 0.5, 0.5, 0.5}, p); got != exec.ImplBranching {
		t.Errorf("sel 1%% first of four: chose %v, want branching", got)
	}
	// Mid selectivity: mispredictions dominate; branch-free wins.
	if got := ChooseImpl([]float64{0.5, 0.5}, p); got != exec.ImplBranchFree {
		t.Errorf("sel 50%%: chose %v, want branch-free", got)
	}
	// Empty and clamping.
	if got := ChooseImpl(nil, p); got != exec.ImplBranching {
		t.Error("empty sels must default to branching")
	}
	if got := ChooseImpl([]float64{-1, 0.5, 0.5, 2}, p); got != exec.ImplBranching {
		t.Errorf("clamped first-sel-0 chose %v, want branching", got)
	}
}

// TestChooseImplAgainstMeasurement cross-checks the analytic decision rule
// against the simulated engine: over a selectivity sweep, whenever the model
// prefers an implementation by a clear margin, the measured cycles agree.
func TestChooseImplAgainstMeasurement(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 40000, Seed: 8})
	qty := d.Lineitem.Column("l_quantity") // uniform 1..50
	p := DefaultImplCostParams()
	for _, bound := range []int64{2, 25, 49} {
		sel := float64(bound) / 50
		q := &exec.Query{
			Table: d.Lineitem,
			Ops: []exec.Op{
				&exec.Predicate{Col: qty, Op: exec.LE, I: bound},
				&exec.Predicate{Col: d.Lineitem.Column("l_partkey"), Op: exec.GE, I: 0},
			},
		}
		run := func(impl exec.ScanImpl) uint64 {
			e := progEngine(t)
			if err := e.BindQuery(q); err != nil {
				t.Fatal(err)
			}
			n := q.Table.NumRows()
			c0 := e.CPU().Cycles()
			for lo := 0; lo < n; lo += e.VectorSize() {
				hi := lo + e.VectorSize()
				if hi > n {
					hi = n
				}
				if _, err := e.RunVectorImpl(q, lo, hi, impl); err != nil {
					t.Fatal(err)
				}
			}
			return e.CPU().Cycles() - c0
		}
		branching := run(exec.ImplBranching)
		free := run(exec.ImplBranchFree)
		chosen := ChooseImpl([]float64{sel, 1}, p)
		measuredBest := exec.ImplBranching
		if free < branching {
			measuredBest = exec.ImplBranchFree
		}
		// Only insist on agreement when the measured margin is clear (>10%).
		margin := math.Abs(float64(branching)-float64(free)) / float64(branching)
		if margin > 0.10 && chosen != measuredBest {
			t.Errorf("sel %.2f: model chose %v, measurement prefers %v (branching %d, free %d)",
				sel, chosen, measuredBest, branching, free)
		}
	}
}

func TestRunMicroAdaptiveCorrectnessAndSwitching(t *testing.T) {
	// All predicates near 50%: branch-free should be selected after the
	// first estimation.
	d := progDataset(t, 60000).ReorderLineitem(tpch.OrderingRandom, 31)
	qty := d.Lineitem.Column("l_quantity")
	disc := d.Lineitem.Column("l_discount")
	q := &exec.Query{
		Table: d.Lineitem,
		Ops: []exec.Op{
			&exec.Predicate{Col: qty, Op: exec.LE, I: 25, Label: "qty<=25"},
			&exec.Predicate{Col: disc, Op: exec.LE, F: 0.05, Label: "disc<=.05"},
		},
	}
	eBase := progEngine(t)
	if err := eBase.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	base, err := eBase.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	eMA := progEngine(t)
	if err := eMA.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	res, st, err := RunMicroAdaptive(eMA, q, Options{ReopInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifying != base.Qualifying {
		t.Errorf("micro-adaptive changed results: %d vs %d", res.Qualifying, base.Qualifying)
	}
	if st.BranchFreeVectors == 0 {
		t.Error("mid-selectivity predicates never switched to branch-free")
	}
	if st.BranchingVectors == 0 {
		t.Error("sampling windows require some branching vectors")
	}
	if st.ImplSwitches == 0 {
		t.Error("no implementation switches recorded")
	}
	// Micro-adaptivity should pay off against pure branching here.
	if float64(res.Cycles) > float64(base.Cycles)*1.02 {
		t.Errorf("micro-adaptive %d cycles vs branching baseline %d", res.Cycles, base.Cycles)
	}
}

func TestRunMicroAdaptiveIneligibleStaysBranching(t *testing.T) {
	d := progDataset(t, 20000)
	e := progEngine(t)
	filter := &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.GE, I: 0}
	j, err := exec.NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), d.NumOrders, filter, "")
	if err != nil {
		t.Fatal(err)
	}
	q := &exec.Query{Table: d.Lineitem, Ops: []exec.Op{
		&exec.Predicate{Col: d.Lineitem.Column("l_quantity"), Op: exec.LE, I: 25},
		j,
	}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	_, st, err := RunMicroAdaptive(e, q, Options{ReopInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchFreeVectors != 0 {
		t.Error("join query ran branch-free vectors")
	}
}

func TestRunProgressiveEnumeratedMatchesAndCosts(t *testing.T) {
	d := progDataset(t, 60000).ReorderLineitem(tpch.OrderingRandom, 41)
	q, wsels := worstOrderQ6(t, d)
	_ = wsels

	ePMU := progEngine(t)
	if err := ePMU.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	pmuRes, pmuSt, err := RunProgressive(ePMU, q, Options{ReopInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	eEnum := progEngine(t)
	if err := eEnum.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	enumRes, enumSt, err := RunProgressiveEnumerated(eEnum, q, Options{ReopInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if enumRes.Qualifying != pmuRes.Qualifying {
		t.Errorf("results diverge: %d vs %d", enumRes.Qualifying, pmuRes.Qualifying)
	}
	if enumSt.Optimizations == 0 || pmuSt.Optimizations == 0 {
		t.Fatal("optimizers idle")
	}
	// Both repair the bad order; the enumerated variant's decisions are
	// exact, so its final order must be ascending in true selectivity.
	if enumSt.Reorders == 0 {
		t.Error("enumerated optimizer never reordered the worst PEO")
	}
}
