package progopt

import (
	"fmt"
	"strings"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/tpch"
)

// groupExec is a compiled grouped aggregation: the group/value columns plus
// the hash tables reserved in the engine's address space — one per simulated
// core, so a parallel run updates per-core partial tables.
type groupExec struct {
	key, value string
	// distinct is the compile-time key-domain estimate the tables are sized
	// for.
	distinct int
	// tables holds one hash-table region per core (a single entry on a
	// serial engine).
	tables []*exec.GroupBy
}

// sortExec is a compiled OrderBy/Limit: the validated keys and limit plus
// one exec.Sort per simulated core, each with its own heap/run-buffer
// regions in the engine's address space, so a parallel run maintains
// per-core partial sort state merged at the barrier.
type sortExec struct {
	keys []exec.SortKey
	// limit is the Top-K bound; -1 means no limit (full sort).
	limit  int
	states []*exec.Sort
}

// Compile validates the plan against the data set, binds its columns into
// the engine's address space, and returns an executable query. Validation
// covers: driving-table membership of every filter, aggregate, and order-by
// column (cross-table predicates are rejected — a predicate on an orders or
// part column would index the shorter build-side column with driving-table
// row ids), bound types against column kinds, join build tables and filter
// selectivities, group-key domains (the grouped-aggregation hash table is
// sized from the key column's actual min/max, scanned here), and ordering
// constraints (Limit needs OrderBy and a non-negative bound).
func (e *Engine) Compile(d *Dataset, p *Plan) (*Query, error) {
	if d == nil {
		return nil, fmt.Errorf("progopt: Compile needs a data set")
	}
	if p == nil {
		return nil, fmt.Errorf("progopt: Compile needs a plan")
	}
	if p.err != nil {
		return nil, p.err
	}
	hasEdge, hasLegacyJoin := false, false
	for _, step := range p.steps {
		switch step.kind {
		case stepEdge:
			hasEdge = true
		case stepJoin:
			hasLegacyJoin = true
		}
	}
	if hasEdge && hasLegacyJoin {
		return nil, fmt.Errorf("progopt: plan mixes Join and JoinOn; migrate Join(build, sel) to JoinOn(%q, <fk column>, build) plus a Filter on the build table", p.fingerprintTable())
	}
	var driving *columnar.Table
	var err error
	if hasEdge {
		driving, err = graphDrivingTable(d, p.table)
	} else {
		driving, err = drivingTable(d, p.table)
	}
	if err != nil {
		return nil, err
	}
	// A storage-backed engine executes over the stored table's decoded
	// image: same rows and values, but the blocks it was decoded from carry
	// the zone maps and encoded sizes the storage tier prices.
	var stored *storedTable
	if e.stcfg != nil {
		if driving != d.d.Lineitem {
			return nil, fmt.Errorf("progopt: a storage-backed engine drives scans from \"lineitem\" only, not %q", driving.Name())
		}
		st, err := e.storedLineitem(d)
		if err != nil {
			return nil, err
		}
		stored = st
		driving = st.tab
	}
	if len(p.steps) == 0 {
		return nil, fmt.Errorf("progopt: plan needs at least one operator")
	}
	if p.sum != "" && p.group != nil {
		return nil, fmt.Errorf("progopt: plan has both Sum and GroupBy; a grouped plan sums its value column")
	}

	var ops []exec.Op
	var joinEdges []JoinEdgeExplain
	if hasEdge {
		// Join-graph plans: resolve edges, push down cross-table predicates,
		// and order operators with the statistics-free greedy orderer.
		ops, joinEdges, err = e.compileGraph(d, driving, p)
		if err != nil {
			return nil, err
		}
	} else {
		ops = make([]exec.Op, 0, len(p.steps))
		for _, step := range p.steps {
			var op exec.Op
			switch step.kind {
			case stepFilter:
				op, err = e.compileFilter(d, driving, step)
			case stepJoin:
				op, err = e.compileJoin(d, driving, step)
			default:
				err = fmt.Errorf("progopt: unknown plan step kind %d", step.kind)
			}
			if err != nil {
				return nil, err
			}
			ops = append(ops, op)
		}
	}

	q := &exec.Query{Table: driving, Ops: ops}
	if p.sum != "" {
		agg, err := compileSum(driving, p.sum)
		if err != nil {
			return nil, err
		}
		q.Agg = agg
	}
	if err := e.eng.BindQuery(q); err != nil {
		return nil, err
	}

	out := &Query{q: q, sumExpr: p.sum, joins: joinEdges}
	if p.group != nil {
		ge, err := e.compileGroup(driving, p.group.key, p.group.value)
		if err != nil {
			return nil, err
		}
		out.group = ge
	}
	if p.hasLimit && len(p.order) == 0 {
		return nil, fmt.Errorf("progopt: Limit(%d) without OrderBy (a limit truncates ordered output)", p.limit)
	}
	if len(p.order) > 0 {
		if p.group != nil {
			return nil, fmt.Errorf("progopt: plan has both GroupBy and OrderBy; ordered grouped plans are not supported yet")
		}
		se, err := e.compileSort(d, driving, p, q.Agg)
		if err != nil {
			return nil, err
		}
		out.sort = se
	}
	if stored != nil {
		// Last, after every ordinary bind and reservation, so a faithful
		// (uncompressed) storage configuration keeps the address space
		// identical to an in-RAM engine's.
		sq, err := e.compileStorage(stored, q)
		if err != nil {
			return nil, err
		}
		out.storage = sq
	}
	return out, nil
}

// compileSort validates the ordering keys and limit and reserves one sort
// state per core.
func (e *Engine) compileSort(d *Dataset, driving *columnar.Table, p *Plan, agg *exec.Aggregate) (*sortExec, error) {
	keys := make([]exec.SortKey, 0, len(p.order))
	for _, o := range p.order {
		col := driving.Column(o.col)
		if col == nil {
			for _, name := range datasetTableNames(d) {
				t := d.d.Table(name)
				if t != driving && t.Column(o.col) != nil {
					return nil, fmt.Errorf(
						"progopt: order column %q belongs to %q, not the driving table %q (order by driving-table columns; join values are not materialized)",
						o.col, name, driving.Name())
				}
			}
			return nil, fmt.Errorf("progopt: unknown order column %q in %q (columns: %s)",
				o.col, driving.Name(), strings.Join(columnNames(driving), ", "))
		}
		keys = append(keys, exec.SortKey{Col: col, Desc: o.desc})
	}
	limit := -1
	if p.hasLimit {
		if p.limit < 0 {
			return nil, fmt.Errorf("progopt: negative limit %d", p.limit)
		}
		limit = p.limit
	}
	nCores := 1
	if e.par != nil {
		nCores = e.par.Workers()
	}
	se := &sortExec{keys: keys, limit: limit, states: make([]*exec.Sort, nCores)}
	for i := range se.states {
		s, err := exec.NewSort(e.cpu, keys, limit, agg, driving.NumRows(), e.eng.VectorSize())
		if err != nil {
			return nil, err
		}
		se.states[i] = s
	}
	return se, nil
}

// drivingTable resolves the plan's table name for plans without JoinOn
// edges. Only lineitem can drive such a scan: the dimension tables are build
// sides, reachable through Join (or, with JoinOn, any table can drive — see
// graphDrivingTable).
func drivingTable(d *Dataset, name string) (*columnar.Table, error) {
	switch name {
	case "", "lineitem":
		return d.d.Lineitem, nil
	default:
		if d.d.Table(name) != nil {
			return nil, fmt.Errorf("progopt: table %q cannot drive a scan without join edges (declare JoinOn edges, or join into it from lineitem)", name)
		}
		return nil, fmt.Errorf("progopt: unknown table %q (tables: %s)", name, strings.Join(datasetTableNames(d), ", "))
	}
}

// graphDrivingTable resolves the driving table of a join-graph plan: any
// data-set table can root the graph.
func graphDrivingTable(d *Dataset, name string) (*columnar.Table, error) {
	if name == "" {
		return d.d.Lineitem, nil
	}
	if t := d.d.Table(name); t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("progopt: unknown table %q (tables: %s)", name, strings.Join(datasetTableNames(d), ", "))
}

// compileFilter resolves one filter step of a plan without join edges into a
// bound driving-table predicate.
func (e *Engine) compileFilter(d *Dataset, driving *columnar.Table, step planStep) (exec.Op, error) {
	col := driving.Column(step.col)
	if col == nil {
		// Distinguish a typo from a cross-table predicate for the error.
		for _, name := range datasetTableNames(d) {
			t := d.d.Table(name)
			if t != driving && t.Column(step.col) != nil {
				return nil, fmt.Errorf(
					"progopt: filter column %q belongs to %q, not the driving table %q (declare JoinOn(..., ..., %q) and the predicate is pushed down to it)",
					step.col, name, driving.Name(), name)
			}
		}
		return nil, fmt.Errorf("progopt: unknown column %q in %q (columns: %s)",
			step.col, driving.Name(), strings.Join(columnNames(driving), ", "))
	}
	return predicateFor(col, step)
}

// predicateFor builds the bound predicate for a filter step whose column has
// been resolved, checking the bound representation against the column kind.
func predicateFor(col *columnar.Column, step planStep) (*exec.Predicate, error) {
	op, err := cmpOf(step.op)
	if err != nil {
		return nil, err
	}
	pred := &exec.Predicate{Col: col, Op: op, ExtraCostInstr: step.extraCost, Label: step.label}
	isFloat := col.Kind() == columnar.Float64
	switch step.bound {
	case boundInt:
		if isFloat {
			return nil, fmt.Errorf("progopt: filter on float column %q needs a float bound, got integer %d", step.col, step.i)
		}
		pred.I = step.i
	case boundFloat:
		if !isFloat {
			return nil, fmt.Errorf("progopt: filter on %s column %q needs an integer bound, got float %v", col.Kind(), step.col, step.f)
		}
		pred.F = step.f
	case boundLegacy:
		pred.I, pred.F = step.i, step.f
	default:
		return nil, fmt.Errorf("progopt: unknown bound kind %d", step.bound)
	}
	return pred, nil
}

// compileJoin resolves one join step into a bound foreign-key join with a
// build-side filter of the requested selectivity. Probe keys come from the
// driving table (which may be the stored decoded image); build-side columns
// always live in RAM.
func (e *Engine) compileJoin(d *Dataset, driving *columnar.Table, step planStep) (exec.Op, error) {
	if step.filterSel <= 0 || step.filterSel > 1 {
		return nil, fmt.Errorf("progopt: join filter selectivity %v outside (0,1]", step.filterSel)
	}
	label := step.label
	switch step.build {
	case "orders":
		if label == "" {
			label = "join-orders"
		}
		cut := tpch.QuantileInt32(d.d.Orders.Column("o_orderdate"), step.filterSel)
		filter := &exec.Predicate{Col: d.d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(cut)}
		return exec.NewFKJoin(e.cpu, driving.Column("l_orderkey"), d.d.NumOrders, filter, label)
	case "part":
		if label == "" {
			label = "join-part"
		}
		cut := int64(50 * step.filterSel)
		filter := &exec.Predicate{Col: d.d.Part.Column("p_size"), Op: exec.LE, I: cut}
		return exec.NewFKJoin(e.cpu, driving.Column("l_partkey"), d.d.NumParts, filter, label)
	default:
		return nil, fmt.Errorf("progopt: unknown build table %q (Join reaches \"orders\" and \"part\"; use JoinOn for other tables)", step.build)
	}
}

// compileSum parses an aggregate expression — a numeric column name or a
// product of two — and resolves it against the driving table.
func compileSum(driving *columnar.Table, expr string) (*exec.Aggregate, error) {
	parts := strings.Split(expr, "*")
	cols := make([]*columnar.Column, 0, len(parts))
	for _, part := range parts {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("progopt: malformed aggregate expression %q", expr)
		}
		col := driving.Column(name)
		if col == nil {
			return nil, fmt.Errorf("progopt: unknown aggregate column %q in %q", name, driving.Name())
		}
		cols = append(cols, col)
	}
	var f func(row int) float64
	switch len(cols) {
	case 1:
		c := cols[0]
		f = func(row int) float64 { return c.Float64At(row) }
	case 2:
		a, b := cols[0], cols[1]
		f = func(row int) float64 { return a.Float64At(row) * b.Float64At(row) }
	default:
		return nil, fmt.Errorf("progopt: aggregate expression %q has %d factors; 1 or 2 supported", expr, len(cols))
	}
	return &exec.Aggregate{Cols: cols, F: f}, nil
}

// compileGroup validates the grouped aggregation, scans the key column's
// domain to size the hash tables, and reserves one table per core.
func (e *Engine) compileGroup(driving *columnar.Table, key, value string) (*groupExec, error) {
	g := driving.Column(key)
	v := driving.Column(value)
	if g == nil || v == nil {
		return nil, fmt.Errorf("progopt: unknown column %q or %q in %q", key, value, driving.Name())
	}
	distinct, err := keyDomain(g)
	if err != nil {
		return nil, err
	}
	nTables := 1
	if e.par != nil {
		nTables = e.par.Workers()
	}
	ge := &groupExec{key: key, value: value, distinct: distinct, tables: make([]*exec.GroupBy, nTables)}
	for i := range ge.tables {
		gb, err := exec.NewGroupBy(e.cpu, g, v, distinct)
		if err != nil {
			return nil, err
		}
		ge.tables[i] = gb
	}
	return ge, nil
}

// keyDomain scans the group-key column and returns its domain width
// max-min+1 bounded by the row count — the expected distinct-group count the
// hash tables are sized for. A domain-sized table keeps the multiplicative
// hash collision-free for dense keys; sizing from row count alone (or a
// hard-coded constant) collides pathologically on wide domains.
func keyDomain(c *columnar.Column) (int, error) {
	n := c.Len()
	if n == 0 {
		return 0, fmt.Errorf("progopt: group column %q is empty", c.Name())
	}
	switch c.Kind() {
	case columnar.Int64, columnar.Int32, columnar.Date:
	default:
		return 0, fmt.Errorf("progopt: group column %q must be integer-kind, is %v", c.Name(), c.Kind())
	}
	min, max := c.Int64At(0), c.Int64At(0)
	for i := 1; i < n; i++ {
		v := c.Int64At(i)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	domain := max - min + 1
	if domain <= 0 || domain > int64(n) {
		return n, nil
	}
	return int(domain), nil
}
