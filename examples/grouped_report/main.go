// Grouped report: a small end-to-end analytics job on the public API —
// filter lineitems, then aggregate revenue per quantity bucket, all declared
// in one plan and executed morsel-parallel on four simulated cores with
// per-core partial hash tables merged at the barrier. The groups are
// bit-identical to a single-core run; only the makespan shrinks.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	report := func(workers int) {
		eng, err := progopt.New(progopt.Config{VectorSize: 2048, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := eng.GenerateTPCH(150_000, 5, progopt.OrderNatural)
		if err != nil {
			log.Fatal(err)
		}

		// One declarative plan: filters plus the grouped aggregation.
		q, err := eng.Compile(ds, progopt.Scan("lineitem").
			Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.6))).
			Filter("l_discount", progopt.CmpGE, 0.04).
			GroupBy("l_quantity", "l_extendedprice"))
		if err != nil {
			log.Fatal(err)
		}

		res, err := eng.Exec(q, progopt.ExecOptions{Mode: progopt.ModeFixed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d core(s): %8.2f ms, %d of %d rows into %d groups\n",
			workers, res.Millis, res.Qualifying, ds.Lineitems(), len(res.Groups))

		if workers > 1 {
			return // the table below is identical for every worker count
		}
		fmt.Println("\nquantity   revenue_sum      rows")
		fmt.Println("---------------------------------")
		for _, g := range res.Groups {
			if g.Key%10 != 0 { // print every 10th quantity for brevity
				continue
			}
			fmt.Printf("%8d   %12.2f   %6d\n", g.Key, g.Sum, g.Count)
		}
		fmt.Println()
	}
	report(1)
	report(4)
}
