package progopt

import (
	"fmt"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cache"
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Mode selects how Exec drives a query.
type Mode int

// Execution modes.
const (
	// ModeFixed executes the plan's operator order unchanged (the paper's
	// baseline "common execution pattern").
	ModeFixed Mode = iota
	// ModeProgressive re-optimizes the operator order during execution from
	// sampled PMU counters (§4.4).
	ModeProgressive
	// ModeMicroAdaptive is ModeProgressive plus per-interval implementation
	// choice between the branching and branch-free scan (predicates only).
	ModeMicroAdaptive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeProgressive:
		return "progressive"
	case ModeMicroAdaptive:
		return "micro-adaptive"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ExecOptions configure one Exec call.
type ExecOptions struct {
	// Mode selects fixed, progressive, or micro-adaptive execution.
	Mode Mode
	// Progressive configures the optimizer for ModeProgressive and
	// ModeMicroAdaptive (ignored by ModeFixed).
	Progressive Progressive
}

// ImplStats reports the micro-adaptive implementation choices of a run.
type ImplStats struct {
	// BranchingVectors and BranchFreeVectors count vectors per scan
	// implementation; ImplSwitches counts changes.
	BranchingVectors, BranchFreeVectors, ImplSwitches int
}

// OrderedRow is one row of a sorted (OrderBy/Limit) plan's output.
type OrderedRow struct {
	// Row is the driving-table row id — the deterministic tie-break, and a
	// handle back into the data set.
	Row int64
	// Keys holds the sort-key values in OrderBy precedence order
	// (integer-kind columns widened to float64).
	Keys []float64
	// Value is the plan's Sum expression evaluated for this row (0 when the
	// plan has no Sum). Result.Sum still totals the expression over all
	// qualifying tuples, limit or not.
	Value float64
}

// ExecResult is the outcome of one Exec call: the execution result, the
// grouped output when the plan groups, the ordered output when it sorts,
// and optimizer telemetry when the mode adapts.
type ExecResult struct {
	Result
	// Groups holds the grouped-aggregation output rows (sorted by key) when
	// the plan has a GroupBy step; nil otherwise.
	Groups []GroupRow
	// Rows holds the ordered output when the plan has OrderBy (truncated to
	// Limit when one is set); nil otherwise. Bit-identical across execution
	// modes, worker counts, and Config.ScalarExec.
	Rows []OrderedRow
	// Stats reports optimizer actions (zero-valued under ModeFixed).
	Stats Stats
	// Impl reports implementation choices (zero-valued unless
	// ModeMicroAdaptive).
	Impl ImplStats
	// Served carries workload-server provenance (arrival/latency
	// timestamps, cache hits, warm starts) when the result came from
	// Ticket.Wait; nil for direct Exec calls.
	Served *ServedInfo
	// Storage reports the stored scan — block pruning and tier activity —
	// when the engine executes over storage; nil for in-RAM engines.
	Storage *StorageStats
}

// Exec executes a compiled query from a cold hardware state. It is the
// single entry point for every execution shape: all modes honor
// Config.Workers (with Workers > 1 the scan runs morsel-driven; Cycles and
// Millis are makespans and Counters the merged per-core PMU deltas), and a
// grouped plan aggregates with per-core partial hash tables merged at the
// barrier. Qualifying, Sum, and Groups are bit-identical across modes,
// worker counts, and Config.ScalarExec.
//
// Grouped plans currently execute their operator order as compiled
// (ModeFixed); adaptive modes on grouped plans return an error.
func (e *Engine) Exec(q *Query, opts ExecOptions) (ExecResult, error) {
	if q == nil || q.q == nil {
		return ExecResult{}, fmt.Errorf("progopt: Exec needs a compiled query")
	}
	switch opts.Mode {
	case ModeFixed, ModeProgressive, ModeMicroAdaptive:
	default:
		return ExecResult{}, fmt.Errorf("progopt: unknown execution mode %d", int(opts.Mode))
	}
	if q.group != nil && opts.Mode != ModeFixed {
		return ExecResult{}, fmt.Errorf("progopt: %s execution of grouped plans is not supported yet; use ModeFixed", opts.Mode)
	}
	// A stored query runs with the storage tier attached to every core —
	// residency dropped first (every Exec is a cold scan), counters
	// snapshotted for the post-run delta.
	var before []cache.StorageCounters
	if q.storage != nil {
		b, err := e.attachStorage(q.storage)
		if err != nil {
			return ExecResult{}, err
		}
		before = b
		defer e.detachStorage()
	}
	// The trace summary aggregates exactly this query's events: mark the
	// recorder now, summarize what was appended after the run.
	var marks []int
	if e.tr != nil {
		marks = e.tr.rec.Marks()
	}
	var out ExecResult
	var err error
	switch {
	case q.group != nil:
		out, err = e.execGrouped(q)
	case q.sort != nil:
		out, err = e.execSorted(q, opts)
	default:
		out, err = e.execScan(q, opts)
	}
	if err != nil {
		return ExecResult{}, err
	}
	if e.tr != nil {
		aggs := summarizeTrace(e.tr.rec.SummarizeSince(marks))
		q.traced.Store(&aggs)
	}
	if q.storage != nil {
		// The tier is an observer: the run's schedule, results, and PMU
		// counters are exactly the in-RAM engine's. Its stall debt extends
		// the reported time — the slowest core's stalls on a parallel run,
		// the run's whole stall delta on a serial one.
		stats, maxStall := storageStats(q.storage.plan, q.storage.views, before)
		out.Storage = stats
		out.Cycles += maxStall
		out.Millis = e.cpu.MillisOf(out.Cycles)
	}
	return out, nil
}

// execScan runs an unordered plan in the requested mode.
func (e *Engine) execScan(q *Query, opts ExecOptions) (ExecResult, error) {
	switch opts.Mode {
	case ModeProgressive:
		return e.execProgressive(q, opts.Progressive)
	case ModeMicroAdaptive:
		return e.execMicroAdaptive(q, opts.Progressive)
	default:
		return e.execFixed(q)
	}
}

// execSorted runs a sorted plan: the scan executes in the requested mode —
// fixed, progressive, or micro-adaptive, serial or morsel-parallel — with a
// fresh per-core sort collector attached to every engine, then the
// coordinator core (core 0) merges the partial heaps or sorted runs at the
// barrier and emits the ordered output, extending the run's makespan and
// counters exactly like the grouped aggregation's merge. The emitted rows
// are the unique total-order result (keys, then row id), so they are
// bit-identical across modes, worker counts, and Config.ScalarExec.
func (e *Engine) execSorted(q *Query, opts ExecOptions) (ExecResult, error) {
	runs := make([]*exec.SortRun, len(q.sort.states))
	for i, s := range q.sort.states {
		runs[i] = exec.NewSortRun(s)
	}
	if e.par != nil {
		engines := e.par.Engines()
		if len(engines) != len(runs) {
			return ExecResult{}, fmt.Errorf("progopt: query compiled for %d cores, engine has %d", len(runs), len(engines))
		}
		for i, w := range engines {
			w.SetSortRun(runs[i])
		}
		defer func() {
			for _, w := range engines {
				w.SetSortRun(nil)
			}
		}()
	} else {
		e.eng.SetSortRun(runs[0])
		defer e.eng.SetSortRun(nil)
	}
	out, err := e.execScan(q, opts)
	if err != nil {
		return ExecResult{}, err
	}
	coord := e.cpu
	if e.par != nil {
		coord = e.par.Engines()[0].CPU()
	}
	s0 := coord.Sample()
	c0 := coord.Cycles()
	rows := exec.FinalizeSort(coord, 0, runs)
	out.Cycles += coord.Cycles() - c0
	out.Millis = coord.MillisOf(out.Cycles)
	addCounters(out.Counters, coord.Sample().Sub(s0))
	out.Rows = toOrderedRows(rows)
	return out, nil
}

// toOrderedRows maps the executor's sorted rows to the public type.
func toOrderedRows(rows []exec.SortedRow) []OrderedRow {
	out := make([]OrderedRow, len(rows))
	for i, r := range rows {
		out[i] = OrderedRow{Row: r.Row, Keys: r.Keys, Value: r.Value}
	}
	return out
}

// addCounters folds a PMU delta into a public counter map.
func addCounters(m map[string]uint64, delta pmu.Sample) {
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		m[ev.String()] += delta.Get(ev)
	}
}

// cold resets transient hardware state on every core the run will use.
func (e *Engine) cold() {
	if e.par != nil {
		e.par.Cold()
		return
	}
	e.cpu.FlushCaches()
	e.cpu.ResetPredictor()
}

func (e *Engine) execFixed(q *Query) (ExecResult, error) {
	e.cold()
	if e.par != nil {
		r, err := e.par.Run(q.q)
		if err != nil {
			return ExecResult{}, err
		}
		return ExecResult{Result: toResult(r)}, nil
	}
	r, err := e.eng.Run(q.q)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Result: toResult(r)}, nil
}

// optTrack returns the engine's optimizer decision track, nil when tracing is
// disabled.
func (e *Engine) optTrack() *trace.Track {
	if e.tr == nil {
		return nil
	}
	return e.tr.opt
}

func (e *Engine) execProgressive(q *Query, p Progressive) (ExecResult, error) {
	opts := p.coreOptions()
	opts.Trace = e.optTrack()
	e.cold()
	if e.par != nil {
		r, st, err := core.RunParallelProgressive(e.par, q.q, opts)
		if err != nil {
			return ExecResult{}, err
		}
		return ExecResult{Result: toResult(r), Stats: toStats(st.Stats)}, nil
	}
	r, st, err := core.RunProgressive(e.eng, q.q, opts)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Result: toResult(r), Stats: toStats(st)}, nil
}

func (e *Engine) execMicroAdaptive(q *Query, p Progressive) (ExecResult, error) {
	opts := p.coreOptions()
	opts.Trace = e.optTrack()
	e.cold()
	if e.par != nil {
		r, st, err := core.RunParallelMicroAdaptive(e.par, q.q, opts)
		if err != nil {
			return ExecResult{}, err
		}
		return ExecResult{
			Result: toResult(r),
			Stats:  toStats(st.Stats),
			Impl: ImplStats{
				BranchingVectors:  st.BranchingVectors,
				BranchFreeVectors: st.BranchFreeVectors,
				ImplSwitches:      st.ImplSwitches,
			},
		}, nil
	}
	r, st, err := core.RunMicroAdaptive(e.eng, q.q, opts)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{
		Result: toResult(r),
		Stats:  toStats(st.Stats),
		Impl: ImplStats{
			BranchingVectors:  st.BranchingVectors,
			BranchFreeVectors: st.BranchFreeVectors,
			ImplSwitches:      st.ImplSwitches,
		},
	}, nil
}

func (e *Engine) execGrouped(q *Query) (ExecResult, error) {
	e.cold()
	var res exec.GroupResult
	var err error
	if e.par != nil {
		res, err = e.par.RunGroupBy(q.q, q.group.tables)
	} else {
		res, err = e.eng.RunGroupBy(q.q, q.group.tables[0])
	}
	if err != nil {
		return ExecResult{}, err
	}
	rows := make([]GroupRow, len(res.Groups))
	for i, g := range res.Groups {
		rows[i] = GroupRow{Key: g.Key, Sum: g.Sum, Count: g.Count}
	}
	return ExecResult{Result: toResult(res.Result), Groups: rows}, nil
}

// coreOptions maps the public Progressive knobs to the driver options,
// applying the default interval.
func (p Progressive) coreOptions() core.Options {
	interval := p.Interval
	if interval <= 0 {
		interval = 10
	}
	return core.Options{
		ReopInterval:      interval,
		DisableValidation: p.DisableValidation,
	}
}

// toStats maps driver stats to the public type.
func toStats(st core.Stats) Stats {
	return Stats{
		Optimizations:     st.Optimizations,
		Reorders:          st.Reorders,
		Reverts:           st.Reverts,
		FinalOrder:        st.FinalOrder,
		LastEstimate:      st.LastEstimate,
		ConvergedAtCycles: st.ConvergedAtCycles,
		Samples:           toSamples(st.Samples),
	}
}

// toSamples maps the driver's retained observation series to the public type.
func toSamples(ss []core.Sample) []SampleObs {
	if len(ss) == 0 {
		return nil
	}
	out := make([]SampleObs, len(ss))
	for i, s := range ss {
		out[i] = SampleObs{
			Cycles: s.Cycles,
			Tuples: s.Tuples,
			Counters: map[string]uint64{
				pmu.BrNotTaken.String():   s.Counters.Get(pmu.BrNotTaken),
				pmu.BrMPTaken.String():    s.Counters.Get(pmu.BrMPTaken),
				pmu.BrMPNotTaken.String(): s.Counters.Get(pmu.BrMPNotTaken),
				pmu.L3Access.String():     s.Counters.Get(pmu.L3Access),
			},
			Sels: s.Sels,
		}
	}
	return out
}
