// Package experiments regenerates every measured figure of the paper's
// evaluation (§5) plus the model-validation figures of §3. Each experiment
// returns one or more Reports — printable tables whose rows are the series
// the paper plots. EXPERIMENTS.md records the paper-vs-measured comparison
// for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"progopt/internal/trace"
)

// Config scales an experiment run. Zero values take defaults; Quick shrinks
// sweeps so the full suite runs in seconds (used by tests).
type Config struct {
	// Lineitems is the driving-table row count (default 600*VectorSize,
	// mirroring the paper's 600 vectors).
	Lineitems int
	// VectorSize is tuples per vector (default 2048; the paper uses 1M on
	// hardware 16x larger and 500x faster than the simulator).
	VectorSize int
	// Seed drives all data generation.
	Seed int64
	// PermSample caps how many of the 120 PEOs the permutation sweeps run
	// (0 = all). Quick mode defaults it to 12.
	PermSample int
	// Quick shrinks data and sweep resolution for fast CI runs.
	Quick bool
	// Workers is the number of simulated cores measurements run on (default
	// 1 = serial; >1 uses the morsel-driven scheduler and reports makespans).
	Workers int
	// ScalarExec forces the tuple-at-a-time row loop instead of the
	// batch-kernel pipeline.
	ScalarExec bool
	// Trace, when non-nil, records every rig measurement into this recorder:
	// each rig registers its own uniquely named core and optimizer tracks, so
	// one recorder can hold a whole experiment's sweep for Chrome export.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.VectorSize <= 0 {
		if c.Quick {
			c.VectorSize = 512
		} else {
			c.VectorSize = 2048
		}
	}
	if c.Lineitems <= 0 {
		if c.Quick {
			c.Lineitems = 60 * c.VectorSize
		} else {
			c.Lineitems = 600 * c.VectorSize
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PermSample == 0 && c.Quick {
		c.PermSample = 8
	}
	return c
}

// Report is one printable table.
type Report struct {
	// ID is the figure identifier, e.g. "fig11".
	ID string
	// Title describes the content.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, pre-formatted.
	Rows [][]string
	// Notes document scaling or substitutions relevant to reading the table.
	Notes []string
}

// String renders the report as an aligned ASCII table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated values (cells are assumed not
// to contain commas; all generated cells are numeric or simple labels).
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment couples a figure id with its runner.
type Experiment struct {
	// ID is the figure identifier ("fig01" ... "fig16").
	ID string
	// Title is the paper's figure caption, abbreviated.
	Title string
	// Run executes the experiment.
	Run func(Config) ([]*Report, error)
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		{"fig01", "Best v. worst plan cost for TPC-H Q6", Fig01},
		{"fig02", "Counter overview over selectivity", Fig02},
		{"fig03", "Markov chain state counts v. simulated Ivy Bridge", Fig03},
		{"fig04", "Two-predicate branch mispredictions: measured/predicted", Fig04},
		{"fig06", "Branch counters across microarchitectures", Fig06},
		{"fig07", "Search space restriction example", Fig07},
		{"fig08", "Two-predicate counter predictions", Fig08},
		{"fig09", "Start point selection sequence", Fig09},
		{"fig11", "TPC-H common case: 120 PEOs, baseline v. progressive", Fig11},
		{"fig12", "Q6 with varying shipdate selectivity", Fig12},
		{"fig13", "Q6 on sorted/clustered/random data sets", Fig13},
		{"fig14", "Sortedness and expensive predicates", Fig14},
		{"fig15", "Foreign-key join order", Fig15},
		{"fig16", "Overhead: enumerator v. performance counters", Fig16},
		{"ext-enum", "Extension: enumerator-driven v. counter-driven optimizer", ExtEnum},
		{"ext-micro", "Extension: micro-adaptive branching v. branch-free choice", ExtMicro},
		{"ext-static", "Extension: static histogram optimizer v. progressive", ExtStatic},
		{"ext-parallel", "Extension: morsel-driven multi-core scaling", ExtParallel},
		{"ext-groupby", "Extension: morsel-driven grouped aggregation", ExtGroupBy},
		{"ext-serve", "Extension: workload service — concurrency, latency, feedback cache", ExtServe},
		{"ext-topk", "Extension: morsel-parallel Top-K/OrderBy operator", ExtTopK},
		{"ext-storage", "Extension: stored PCOL v2 tables — budget sweep, compression, packed scans", ExtStorage},
		{"ext-trace", "Extension: traced convergence timeline — reorder events and PMU series v. simulated cycles", ExtTrace},
		{"ext-joins", "Extension: join-graph ordering — greedy v. cost model v. PMU-progressive (2-5 tables)", ExtJoins},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// samplePerms picks up to k evenly spaced permutations (all when k <= 0 or
// k >= len(perms)).
func samplePerms(perms [][]int, k int) [][]int {
	if k <= 0 || k >= len(perms) {
		return perms
	}
	out := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, perms[i*len(perms)/k])
	}
	return out
}

// fmtF formats a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// fmtPerm renders a permutation as "3-1-0-2".
func fmtPerm(p []int) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "-")
}

// sortRowsByFloatColumn sorts rows ascending by the numeric value of the
// given column (non-numeric cells sort last).
func sortRowsByFloatColumn(rows [][]string, col int) {
	sort.SliceStable(rows, func(a, b int) bool {
		var va, vb float64
		_, ea := fmt.Sscanf(rows[a][col], "%g", &va)
		_, eb := fmt.Sscanf(rows[b][col], "%g", &vb)
		if ea != nil {
			return false
		}
		if eb != nil {
			return true
		}
		return va < vb
	})
}
