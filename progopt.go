package progopt

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/branch"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

// Arch names the simulated branch-predictor microarchitecture.
type Arch string

// Supported architectures (see internal/hw/branch for the models).
const (
	ArchDefault     Arch = ""
	ArchNehalem     Arch = "nehalem"
	ArchSandyBridge Arch = "sandy-bridge"
	ArchIvyBridge   Arch = "ivy-bridge"
	ArchBroadwell   Arch = "broadwell"
	ArchAMD         Arch = "amd"
)

// Config configures an Engine.
type Config struct {
	// VectorSize is tuples per execution vector (default 2048).
	VectorSize int
	// Arch selects the simulated branch predictor (default Ivy Bridge, the
	// paper's evaluation machine).
	Arch Arch
	// DisablePrefetch turns the simulated L2 streamer off.
	DisablePrefetch bool
	// Workers is the number of simulated cores executing queries with the
	// morsel-driven scheduler (default 1 = serial). Run and RunProgressive
	// honor it, reporting the makespan (slowest core) and the PMU counters
	// merged across cores, with results bit-identical across worker counts;
	// RunMicroAdaptive and RunGroupBy always execute on a single core.
	Workers int
	// ScalarExec forces the seed's tuple-at-a-time row loop instead of the
	// batch-kernel pipeline (for comparison; PMU load/branch counts and
	// results are identical either way).
	ScalarExec bool
}

// Engine is the public facade: one or more simulated cores plus the
// vectorized query engine and the progressive optimizer.
type Engine struct {
	cpu *cpu.CPU
	eng *exec.Engine
	// par is the morsel-driven multi-core executor, nil when Workers <= 1.
	par     *exec.Parallel
	workers int
	scalar  bool
}

// New builds an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.VectorSize <= 0 {
		cfg.VectorSize = 2048
	}
	prof := cpu.ScaledXeon()
	if cfg.Arch != ArchDefault {
		prof = cpu.ForArch(branch.Arch(cfg.Arch))
	}
	if cfg.DisablePrefetch {
		prof.Hierarchy.PrefetchDisabled = true
	}
	c, err := cpu.New(prof)
	if err != nil {
		return nil, err
	}
	e, err := exec.NewEngine(c, cfg.VectorSize)
	if err != nil {
		return nil, err
	}
	e.SetScalar(cfg.ScalarExec)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	var par *exec.Parallel
	if workers > 1 {
		par, err = exec.NewParallel(prof, workers, cfg.VectorSize)
		if err != nil {
			return nil, err
		}
		par.SetScalar(cfg.ScalarExec)
	}
	return &Engine{cpu: c, eng: e, par: par, workers: workers, scalar: cfg.ScalarExec}, nil
}

// Workers returns the number of simulated cores the engine runs queries on.
func (e *Engine) Workers() int { return e.workers }

// Ordering selects the physical row order of a generated TPC-H data set.
type Ordering string

// Row orderings (the paper's Figure 13 axis plus the bulk-load default).
const (
	// OrderNatural is dbgen bulk-load order: weakly clustered shipdate,
	// lineitem co-clustered with orders.
	OrderNatural Ordering = "natural"
	// OrderSorted sorts lineitem by shipdate.
	OrderSorted Ordering = "sorted"
	// OrderClustered shuffles within shipdate months.
	OrderClustered Ordering = "clustered"
	// OrderRandom fully shuffles rows.
	OrderRandom Ordering = "random"
)

// Dataset wraps a generated TPC-H data set.
type Dataset struct {
	d *tpch.Dataset
}

// GenerateTPCH produces a TPC-H-shaped data set with the given lineitem
// count and row ordering.
func (e *Engine) GenerateTPCH(lineitems int, seed int64, order Ordering) (*Dataset, error) {
	d, err := tpch.Generate(tpch.Config{Lineitems: lineitems, Seed: seed})
	if err != nil {
		return nil, err
	}
	switch order {
	case OrderNatural, "":
	case OrderSorted:
		d = d.ReorderLineitem(tpch.OrderingShipdateSorted, seed+1)
	case OrderClustered:
		d = d.ReorderLineitem(tpch.OrderingClusteredMonth, seed+1)
	case OrderRandom:
		d = d.ReorderLineitem(tpch.OrderingRandom, seed+1)
	default:
		return nil, fmt.Errorf("progopt: unknown ordering %q", order)
	}
	return &Dataset{d: d}, nil
}

// Lineitems returns the lineitem row count.
func (d *Dataset) Lineitems() int { return d.d.Lineitem.NumRows() }

// ShipdateCutoff returns a shipdate bound hitting the given selectivity.
func (d *Dataset) ShipdateCutoff(sel float64) int32 { return d.d.ShipdateCutoff(sel) }

// Query wraps an executable query plan whose operator order the progressive
// optimizer may permute.
type Query struct {
	q *exec.Query
}

// NumOps returns the number of reorderable operators.
func (q *Query) NumOps() int { return len(q.q.Ops) }

// OpNames returns operator names in the current evaluation order.
func (q *Query) OpNames() []string { return q.q.OpNames() }

// WithOrder returns the query with operators permuted (position i takes old
// operator perm[i]).
func (q *Query) WithOrder(perm []int) (*Query, error) {
	qo, err := q.q.WithOrder(perm)
	if err != nil {
		return nil, err
	}
	return &Query{q: qo}, nil
}

// BuildQ6 builds TPC-H Query 6 (five reorderable predicates) over the data
// set and binds it into the engine's address space.
func (e *Engine) BuildQ6(d *Dataset) (*Query, error) {
	q, err := exec.Q6(d.d)
	if err != nil {
		return nil, err
	}
	if err := e.eng.BindQuery(q); err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// BuildQ6Shipdate builds the introduction's modified Q6 (four predicates)
// with the given shipdate cutoff.
func (e *Engine) BuildQ6Shipdate(d *Dataset, cutoff int32) (*Query, error) {
	q, err := exec.Q6Shipdate(d.d, cutoff)
	if err != nil {
		return nil, err
	}
	if err := e.eng.BindQuery(q); err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Cmp is a predicate comparison operator.
type Cmp string

// Comparison operators for Predicate.
const (
	CmpLE Cmp = "<="
	CmpLT Cmp = "<"
	CmpGE Cmp = ">="
	CmpGT Cmp = ">"
	CmpEQ Cmp = "="
)

// Predicate specifies one selection predicate for BuildScan.
type Predicate struct {
	// Table selects the lineitem ("lineitem"), orders, or part table.
	Table string
	// Column is the column name (e.g. "l_quantity").
	Column string
	// Op is the comparison.
	Op Cmp
	// Int is the bound for integer/date columns; Float for float columns.
	Int   int64
	Float float64
	// ExtraCostInstr models an expensive predicate (UDF, string match).
	ExtraCostInstr int
}

// BuildScan builds a multi-predicate selection over lineitem with an
// optional sum(l_extendedprice*l_discount) aggregate.
func (e *Engine) BuildScan(d *Dataset, preds []Predicate, withAgg bool) (*Query, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("progopt: scan needs at least one predicate")
	}
	ops := make([]exec.Op, len(preds))
	for i, p := range preds {
		tbl := d.d.Lineitem
		switch p.Table {
		case "", "lineitem":
		case "orders":
			tbl = d.d.Orders
		case "part":
			tbl = d.d.Part
		default:
			return nil, fmt.Errorf("progopt: unknown table %q", p.Table)
		}
		col := tbl.Column(p.Column)
		if col == nil {
			return nil, fmt.Errorf("progopt: unknown column %q in %q", p.Column, tbl.Name())
		}
		var op exec.CmpOp
		switch p.Op {
		case CmpLE:
			op = exec.LE
		case CmpLT:
			op = exec.LT
		case CmpGE:
			op = exec.GE
		case CmpGT:
			op = exec.GT
		case CmpEQ:
			op = exec.EQ
		default:
			return nil, fmt.Errorf("progopt: unknown comparison %q", p.Op)
		}
		ops[i] = &exec.Predicate{Col: col, Op: op, I: p.Int, F: p.Float, ExtraCostInstr: p.ExtraCostInstr}
	}
	q := &exec.Query{Table: d.d.Lineitem, Ops: ops}
	if withAgg {
		price := d.d.Lineitem.Column("l_extendedprice")
		disc := d.d.Lineitem.Column("l_discount")
		pf, df := price.F64(), disc.F64()
		q.Agg = &exec.Aggregate{
			Cols: []*columnar.Column{price, disc},
			F:    func(row int) float64 { return pf[row] * df[row] },
		}
	}
	if err := e.eng.BindQuery(q); err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Result reports a query execution.
type Result struct {
	// Qualifying is the output cardinality.
	Qualifying int64
	// Sum is the aggregate value (0 without an aggregate).
	Sum float64
	// Cycles is the simulated cycle cost.
	Cycles uint64
	// Millis is Cycles at the simulated clock.
	Millis float64
	// Counters holds the PMU deltas by perf-style event name.
	Counters map[string]uint64
}

func toResult(r exec.Result) Result {
	counters := make(map[string]uint64, pmu.NumEvents)
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		counters[ev.String()] = r.Counters.Get(ev)
	}
	return Result{
		Qualifying: r.Qualifying,
		Sum:        r.Sum,
		Cycles:     r.Cycles,
		Millis:     r.Millis,
		Counters:   counters,
	}
}

// Run executes the query with a fixed operator order (the baseline "common
// execution pattern") from a cold hardware state. With Workers > 1 the
// driving table is consumed as morsels by all cores; the result's Cycles and
// Millis are the makespan and Counters the merged per-core PMU deltas.
func (e *Engine) Run(q *Query) (Result, error) {
	if e.par != nil {
		e.par.Cold()
		r, err := e.par.Run(q.q)
		if err != nil {
			return Result{}, err
		}
		return toResult(r), nil
	}
	e.cpu.FlushCaches()
	e.cpu.ResetPredictor()
	r, err := e.eng.Run(q.q)
	if err != nil {
		return Result{}, err
	}
	return toResult(r), nil
}

// Progressive configures progressive optimization.
type Progressive struct {
	// Interval is the number of vectors between optimization cycles
	// (default 10, the paper's best setting).
	Interval int
	// DisableValidation skips the reorder validation step (ablation).
	DisableValidation bool
}

// Stats reports what the progressive optimizer did.
type Stats struct {
	// Optimizations, Reorders, and Reverts count optimizer actions.
	Optimizations, Reorders, Reverts int
	// FinalOrder is the final operator permutation.
	FinalOrder []int
	// LastEstimate is the final selectivity estimate per operator position.
	LastEstimate []float64
}

// RunProgressive executes the query with progressive re-optimization from a
// cold hardware state. With Workers > 1 re-optimization runs at morsel-block
// granularity: every block spans Interval vectors per core, the per-core PMU
// deltas are merged, and the estimator inverts the cost models over the
// aggregate (see core.RunParallelProgressive).
func (e *Engine) RunProgressive(q *Query, p Progressive) (Result, Stats, error) {
	if p.Interval <= 0 {
		p.Interval = 10
	}
	opts := core.Options{
		ReopInterval:      p.Interval,
		DisableValidation: p.DisableValidation,
	}
	if e.par != nil {
		e.par.Cold()
		r, st, err := core.RunParallelProgressive(e.par, q.q, opts)
		if err != nil {
			return Result{}, Stats{}, err
		}
		return toResult(r), Stats{
			Optimizations: st.Optimizations,
			Reorders:      st.Reorders,
			Reverts:       st.Reverts,
			FinalOrder:    st.FinalOrder,
			LastEstimate:  st.LastEstimate,
		}, nil
	}
	e.cpu.FlushCaches()
	e.cpu.ResetPredictor()
	r, st, err := core.RunProgressive(e.eng, q.q, opts)
	if err != nil {
		return Result{}, Stats{}, err
	}
	return toResult(r), Stats{
		Optimizations: st.Optimizations,
		Reorders:      st.Reorders,
		Reverts:       st.Reverts,
		FinalOrder:    st.FinalOrder,
		LastEstimate:  st.LastEstimate,
	}, nil
}

// MicroAdaptiveStats extends Stats with implementation-choice telemetry.
type MicroAdaptiveStats struct {
	Stats
	// BranchingVectors and BranchFreeVectors count vectors per scan
	// implementation; ImplSwitches counts changes.
	BranchingVectors, BranchFreeVectors, ImplSwitches int
}

// RunMicroAdaptive executes the query with progressive re-optimization plus
// micro-adaptive implementation choice: each optimization cycle also decides
// whether upcoming vectors run the branching (short-circuiting) or the
// branch-free (predicated) scan, from the counter-estimated selectivities.
// Unlike Run and RunProgressive it always executes on a single simulated
// core, ignoring Config.Workers — do not compare its cycle counts against
// multi-core makespans.
func (e *Engine) RunMicroAdaptive(q *Query, p Progressive) (Result, MicroAdaptiveStats, error) {
	if p.Interval <= 0 {
		p.Interval = 10
	}
	e.cpu.FlushCaches()
	e.cpu.ResetPredictor()
	r, st, err := core.RunMicroAdaptive(e.eng, q.q, core.Options{
		ReopInterval:      p.Interval,
		DisableValidation: p.DisableValidation,
	})
	if err != nil {
		return Result{}, MicroAdaptiveStats{}, err
	}
	return toResult(r), MicroAdaptiveStats{
		Stats: Stats{
			Optimizations: st.Optimizations,
			Reorders:      st.Reorders,
			Reverts:       st.Reverts,
			FinalOrder:    st.FinalOrder,
			LastEstimate:  st.LastEstimate,
		},
		BranchingVectors:  st.BranchingVectors,
		BranchFreeVectors: st.BranchFreeVectors,
		ImplSwitches:      st.ImplSwitches,
	}, nil
}

// EstimateSelectivities runs one estimation cycle offline: it executes a
// single vector of the query, samples the four paper counters, and inverts
// the cost models. Exposed so applications can inspect the estimator
// directly (see examples/skew_detection).
func (e *Engine) EstimateSelectivities(q *Query) ([]float64, error) {
	n := q.q.Table.NumRows()
	vs := e.eng.VectorSize()
	if n < vs {
		vs = n
	}
	before := e.cpu.Sample()
	if _, err := e.eng.RunVector(q.q, 0, vs); err != nil {
		return nil, err
	}
	delta := e.cpu.Sample().Sub(before)
	sample := core.SampleFromPMU(delta, vs)
	widths := make([]int, len(q.q.Ops))
	for i, op := range q.q.Ops {
		widths[i] = op.Width()
	}
	prof := e.cpu.Profile()
	est, err := core.EstimateSelectivities(sample, core.EstimatorConfig{
		Widths:   widths,
		Geometry: cacheGeometry(prof),
	})
	if err != nil {
		return nil, err
	}
	return est.Sels, nil
}
