package exec

import (
	"fmt"
	"math/bits"
	"sort"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// This file implements the order-aware consumer of the pipeline: a Top-K /
// OrderBy operator over the qualifying tuples of a query. Like GroupBy it
// extends the engine beyond pure selections (§7's "further relational
// operators") and it is the canonical cache-behavior stress: sorting's
// address stream mixes a sequential run-buffer append with the
// data-dependent pointer chase of heap maintenance, exactly the two access
// shapes the Manegold cost models and the PMU-feedback machinery reason
// about.
//
// Two physical strategies share one logical contract:
//
//   - bounded-heap Top-K when a limit is present: each core keeps a K-slot
//     binary heap ordered worst-at-root, so a qualifying tuple costs one
//     root compare and displacing tuples pay a log K sift — the
//     cache-conscious K << N path;
//   - run-generating sort otherwise: survivors append to a sequential run
//     buffer; every full run of runLen entries is sorted in place (one
//     re-stream of the run plus n log n compare work), and the barrier
//     merge streams all sorted runs into the output — textbook external
//     merge sort scaled to the simulated hierarchy.
//
// Simulation and host bookkeeping are fused per insert but follow the PR 4
// run protocol: batch kernels gather each vector's data-dependent heap
// touches and hand them to cpu.LoadAddrs in one call (Hierarchy.LoadStream
// underneath), run-buffer appends collapse into cpu.LoadSeq runs, and the
// scalar row loop issues the same addresses row-at-a-time — identical load
// and instruction totals, only the interleaving differs.
//
// The host-side result never depends on scheduling: the comparator is a
// total order (sort keys, then the global row id as tie-break), so the
// merged per-core states reduce to one canonical output — bit-identical
// across worker counts, execution modes, and Config.ScalarExec, and equal
// to a stable reference sort of the qualifying rows.

// SortKey is one ordering key of a Sort.
type SortKey struct {
	// Col is the key column (any supported kind); it must belong to the
	// query's driving table and be bound before execution.
	Col *columnar.Column
	// Desc orders this key descending.
	Desc bool
}

// Sort is a compiled OrderBy/Limit consumer: the ordering keys, the optional
// Top-K bound, and the simulated regions (heap, run buffer, output) the
// operator's address streams touch. One Sort is compiled per core so a
// parallel run maintains private partial state in its own cache hierarchy;
// per-run host state lives in SortRun.
type Sort struct {
	// Keys are the ordering keys in precedence order; ties break by global
	// row id, making the output order total and deterministic.
	Keys []SortKey
	// Limit is the Top-K bound (output rows); negative means no limit (full
	// sort). Limit 0 is valid and produces no rows.
	Limit int
	// Val, when non-nil, is evaluated per emitted row and carried through
	// the sort as the row's Value (the plan's Sum expression).
	Val *Aggregate

	slotBytes int
	runLen    int
	nRows     int
	heapBase  uint64
	runBase   uint64
	outBase   uint64
}

// Sort cost constants (instructions charged per structural step, in the
// spirit of groupUpdateCostInstr).
const (
	// sortPushCostInstr is one slot write (store row id + normalized keys).
	sortPushCostInstr = 4
	// sortCmpCostInstr is one key comparison against a loaded slot.
	sortCmpCostInstr = 2
	// sortSwapCostInstr is one slot exchange during a sift.
	sortSwapCostInstr = 3
	// sortRunCmpInstr is the per-element-per-level compare work of sorting
	// one run in place.
	sortRunCmpInstr = 4
	// sortMergeCostInstr is the per-element cost of folding a remote
	// partial state into the coordinator's at the barrier.
	sortMergeCostInstr = 4
	// sortEmitCostInstr is the per-row cost of materializing the ordered
	// output.
	sortEmitCostInstr = 2
)

// NewSort builds the operator and reserves its simulated regions: a K-slot
// heap when limit >= 0, an nRows-slot run buffer otherwise, and the ordered
// output buffer. Slots are normalized to 8 bytes per field (row id, each
// key, the carried value), the width the comparator actually touches.
func NewSort(alloc columnar.Allocator, keys []SortKey, limit int, val *Aggregate, nRows, runLen int) (*Sort, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: sort needs at least one key")
	}
	for i, k := range keys {
		if k.Col == nil {
			return nil, fmt.Errorf("exec: nil sort key column at position %d", i)
		}
		switch k.Col.Kind() {
		case columnar.Int64, columnar.Int32, columnar.Date, columnar.Float64:
		default:
			return nil, fmt.Errorf("exec: sort key %q has unsupported kind %v", k.Col.Name(), k.Col.Kind())
		}
	}
	if nRows <= 0 {
		return nil, fmt.Errorf("exec: non-positive sort input size %d", nRows)
	}
	if runLen <= 0 {
		return nil, fmt.Errorf("exec: non-positive sort run length %d", runLen)
	}
	s := &Sort{Keys: keys, Limit: limit, Val: val, runLen: runLen, nRows: nRows}
	s.slotBytes = 8 * (1 + len(keys))
	if val != nil {
		s.slotBytes += 8
	}
	outSlots := nRows
	if limit >= 0 {
		heapSlots := min(limit, nRows)
		outSlots = heapSlots
		if heapSlots > 0 {
			base, err := alloc.Alloc(heapSlots * s.slotBytes)
			if err != nil {
				return nil, err
			}
			s.heapBase = base
		}
	} else {
		base, err := alloc.Alloc(nRows * s.slotBytes)
		if err != nil {
			return nil, err
		}
		s.runBase = base
	}
	if outSlots > 0 {
		base, err := alloc.Alloc(outSlots * s.slotBytes)
		if err != nil {
			return nil, err
		}
		s.outBase = base
	}
	return s, nil
}

// heapSlot returns the simulated address of heap slot i.
func (s *Sort) heapSlot(i int) uint64 { return s.heapBase + uint64(i)*uint64(s.slotBytes) }

// runSlot returns the simulated address of run-buffer slot i.
func (s *Sort) runSlot(i int) uint64 { return s.runBase + uint64(i)*uint64(s.slotBytes) }

// less reports whether row a orders strictly before row b in the output:
// key columns in precedence order, then the global row id — a total order,
// so the result is unique regardless of which core saw which row.
func (s *Sort) less(a, b int32) bool {
	for _, k := range s.Keys {
		if k.Col.Kind() == columnar.Float64 {
			va, vb := k.Col.F64()[a], k.Col.F64()[b]
			if va != vb {
				return (va < vb) != k.Desc
			}
			continue
		}
		va, vb := k.Col.Int64At(int(a)), k.Col.Int64At(int(b))
		if va != vb {
			return (va < vb) != k.Desc
		}
	}
	return a < b
}

// SortedRow is one emitted row of the ordered output.
type SortedRow struct {
	// Row is the driving-table row id.
	Row int64
	// Keys holds the sort-key values in key order (integer kinds widened).
	Keys []float64
	// Value is Sort.Val evaluated for the row (0 without a carried value).
	Value float64
}

// SortRun is the per-core, per-run host state of a Sort: the bounded heap
// or the run buffer this core's qualifying tuples accumulated into. A fresh
// SortRun is attached to each participating engine before a run
// (Engine.SetSortRun) and consumed by FinalizeSort after the barrier.
type SortRun struct {
	s *Sort
	// heap holds row ids worst-at-root (Top-K mode).
	heap []int32
	// rows holds appended row ids, sorted in place per full run of
	// s.runLen (full-sort mode); pending counts rows past the last sorted
	// run boundary.
	rows    []int32
	pending int
	// scratch gathers one batch's data-dependent heap touches for a single
	// LoadAddrs call.
	scratch []uint64
}

// NewSortRun builds an empty run state for the given compiled Sort.
func NewSortRun(s *Sort) *SortRun {
	if s == nil {
		return nil
	}
	return &SortRun{s: s}
}

// Sort returns the compiled operator this state belongs to.
func (r *SortRun) Sort() *Sort { return r.s }

// Add consumes one batch kernel's survivor selection (ascending row ids):
// host state updates plus the PR 4-protocol simulation — heap touches
// gathered into one LoadAddrs stream, run-buffer appends as LoadSeq runs.
func (r *SortRun) Add(c *cpu.CPU, sel []int32) {
	if len(sel) == 0 {
		return
	}
	s := r.s
	if s.Limit >= 0 {
		if s.Limit == 0 {
			return
		}
		r.scratch = r.scratch[:0]
		instr := 0
		for _, row := range sel {
			var d int
			r.scratch, d = r.pushTopK(row, r.scratch)
			instr += d
		}
		c.LoadAddrs(r.scratch)
		c.Exec(instr)
		return
	}
	for len(sel) > 0 {
		n := min(s.runLen-r.pending, len(sel))
		start := len(r.rows)
		r.rows = append(r.rows, sel[:n]...)
		c.LoadSeq(s.runSlot(start), s.slotBytes, n)
		c.Exec(sortPushCostInstr * n)
		r.pending += n
		sel = sel[n:]
		if r.pending == s.runLen {
			r.flushRun(c)
		}
	}
}

// AddOne is the scalar row loop's form of Add: the same touches and
// instruction charges, issued per qualifying row.
func (r *SortRun) AddOne(c *cpu.CPU, row int) {
	s := r.s
	if s.Limit >= 0 {
		if s.Limit == 0 {
			return
		}
		r.scratch = r.scratch[:0]
		var instr int
		r.scratch, instr = r.pushTopK(int32(row), r.scratch)
		c.LoadAddrs(r.scratch)
		c.Exec(instr)
		return
	}
	i := len(r.rows)
	r.rows = append(r.rows, int32(row))
	c.Load(s.runSlot(i))
	c.Exec(sortPushCostInstr)
	r.pending++
	if r.pending == s.runLen {
		r.flushRun(c)
	}
}

// pushTopK updates the bounded heap with row, appending each slot touch the
// update performs to scratch (in access order) and returning the
// instruction charge. The heap keeps the K rows that order earliest, with
// the worst kept row at the root.
func (r *SortRun) pushTopK(row int32, scratch []uint64) ([]uint64, int) {
	s := r.s
	h := r.heap
	instr := 0
	if len(h) < min(s.Limit, s.nRows) {
		i := len(h)
		h = append(h, row)
		scratch = append(scratch, s.heapSlot(i))
		instr += sortPushCostInstr
		for i > 0 {
			p := (i - 1) / 2
			scratch = append(scratch, s.heapSlot(p))
			instr += sortCmpCostInstr
			if !s.less(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			instr += sortSwapCostInstr
			i = p
		}
		r.heap = h
		return scratch, instr
	}
	// Full heap: one root compare; only displacing rows pay the sift-down.
	scratch = append(scratch, s.heapSlot(0))
	instr += sortCmpCostInstr
	if !s.less(row, h[0]) {
		return scratch, instr
	}
	h[0] = row
	instr += sortPushCostInstr
	i := 0
	for {
		worst := i
		for _, child := range [2]int{2*i + 1, 2*i + 2} {
			if child < len(h) {
				scratch = append(scratch, s.heapSlot(child))
				instr += sortCmpCostInstr
				if s.less(h[worst], h[child]) {
					worst = child
				}
			}
		}
		if worst == i {
			break
		}
		h[i], h[worst] = h[worst], h[i]
		instr += sortSwapCostInstr
		i = worst
	}
	return scratch, instr
}

// flushRun sorts the tail run of the run buffer in place: the host sort
// plus the simulated in-cache pass — one re-stream of the run's slots and
// n log n compare work.
func (r *SortRun) flushRun(c *cpu.CPU) {
	n := r.pending
	if n == 0 {
		return
	}
	start := len(r.rows) - n
	run := r.rows[start:]
	sort.Slice(run, func(i, j int) bool { return r.s.less(run[i], run[j]) })
	c.LoadSeq(r.s.runSlot(start), r.s.slotBytes, n)
	c.Exec(sortRunCmpInstr * n * log2ceil(n))
	r.pending = 0
}

// log2ceil returns ceil(log2(n)) for n >= 1 (0 for n <= 1).
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// FinalizeSort merges every core's partial state on the coordinator core
// (runs[coord]) after the scan barrier and emits the canonical ordered
// output. In Top-K mode the coordinator reads each remote heap slot and
// compares it against its own root; in full-sort mode it sorts each
// state's tail run, streams every sorted run, and pays the k-way merge
// compare work. Emission streams the output buffer once. The caller
// measures the coordinator's cycle and counter deltas and extends the
// query's makespan by them — every core waits at the barrier for the merge,
// exactly like the grouped aggregation's.
//
// The returned rows are the unique total-order result: merging per-core
// partial states can never change it, so output is bit-identical across
// worker counts and scheduling histories.
func FinalizeSort(c *cpu.CPU, coord int, runs []*SortRun) []SortedRow {
	s := runs[coord].s
	var all []int32
	if s.Limit >= 0 {
		all = append(all, runs[coord].heap...)
		for w, r := range runs {
			if w == coord {
				continue
			}
			for i := range r.heap {
				c.Load(r.s.heapSlot(i))
				c.Load(s.heapSlot(0))
				c.Exec(sortMergeCostInstr)
			}
			all = append(all, r.heap...)
		}
		sort.Slice(all, func(i, j int) bool { return s.less(all[i], all[j]) })
		if len(all) > s.Limit {
			all = all[:s.Limit]
		}
	} else {
		nRuns := 0
		total := 0
		for _, r := range runs {
			total += len(r.rows)
		}
		all = make([]int32, 0, total)
		for _, r := range runs {
			if r.pending > 0 {
				// The merge phase sorts the tail run it is about to consume.
				r.flushRun(c)
			}
			if len(r.rows) == 0 {
				continue
			}
			c.LoadSeq(r.s.runSlot(0), r.s.slotBytes, len(r.rows))
			nRuns += (len(r.rows) + r.s.runLen - 1) / r.s.runLen
			all = append(all, r.rows...)
		}
		// Host side a single comparison sort; simulation side the k-way
		// merge of nRuns sorted runs — same unique result, the comparator
		// being total.
		sort.Slice(all, func(i, j int) bool { return s.less(all[i], all[j]) })
		c.Exec(sortMergeCostInstr * len(all) * log2ceil(max(nRuns, 2)))
	}
	if len(all) > 0 {
		c.LoadSeq(s.outBase, s.slotBytes, len(all))
		c.Exec(sortEmitCostInstr * len(all))
	}
	out := make([]SortedRow, len(all))
	for i, row := range all {
		sr := SortedRow{Row: int64(row), Keys: make([]float64, len(s.Keys))}
		for k, key := range s.Keys {
			sr.Keys[k] = key.Col.Float64At(int(row))
		}
		if s.Val != nil {
			sr.Value = s.Val.F(int(row))
		}
		out[i] = sr
	}
	return out
}
