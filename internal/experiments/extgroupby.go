package experiments

import (
	"fmt"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// ExtGroupBy measures morsel-driven grouped aggregation: a filtered
// SELECT l_quantity, SUM(l_extendedprice), COUNT(*) GROUP BY l_quantity,
// executed serially and on 2/4/8 simulated cores with per-core partial hash
// tables merged at the barrier. Reported times are makespans; groups (keys,
// float sums, counts) are verified bit-identical across worker counts — the
// value reduction runs in global row order regardless of which core drew
// which morsel.
func ExtGroupBy(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 128 * cfg.VectorSize
	if cfg.Quick {
		rows = 48 * cfg.VectorSize
	}

	rep := &Report{
		ID:      "ext-groupby",
		Title:   "Extension: morsel-driven grouped aggregation (per-core partial tables)",
		Columns: []string{"workers", "group_ms", "speedup", "groups", "qualifying"},
		Notes: []string{
			fmt.Sprintf("%d lineitems; filter 60%% shipdate + discount>=0.04, group by l_quantity", rows),
			"makespan of the slowest core incl. the core-0 merge of all partial tables",
			"groups verified bit-identical (float sums included) across worker counts",
		},
	}

	var serial exec.GroupResult
	for _, workers := range []int{1, 2, 4, 8} {
		// Fresh data set and address space per configuration, so every run
		// binds identically.
		d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cut := d.ShipdateCutoff(0.6)
		q := &exec.Query{
			Table: d.Lineitem,
			Ops: []exec.Op{
				&exec.Predicate{Col: d.Lineitem.Column("l_shipdate"), Op: exec.LE, I: int64(cut)},
				&exec.Predicate{Col: d.Lineitem.Column("l_discount"), Op: exec.GE, F: 0.04},
			},
		}
		wcfg := cfg
		wcfg.Workers = workers
		r, err := newRig(cpu.ScaledXeon(), wcfg)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		nTables := 1
		if r.par != nil {
			nTables = workers
		}
		gs := make([]*exec.GroupBy, nTables)
		for i := range gs {
			gs[i], err = exec.NewGroupBy(r.cpu, d.Lineitem.Column("l_quantity"), d.Lineitem.Column("l_extendedprice"), 50)
			if err != nil {
				return nil, err
			}
		}
		r.cold()
		var res exec.GroupResult
		if r.par != nil {
			res, err = r.par.RunGroupBy(q, gs)
		} else {
			res, err = r.eng.RunGroupBy(q, gs[0])
		}
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			serial = res
		} else {
			if len(res.Groups) != len(serial.Groups) || res.Qualifying != serial.Qualifying {
				return nil, fmt.Errorf("experiments: %d-core grouped run changed the result", workers)
			}
			for i, g := range res.Groups {
				s := serial.Groups[i]
				if g.Key != s.Key || g.Count != s.Count || g.Sum != s.Sum {
					return nil, fmt.Errorf("experiments: %d-core group %d = %+v, serial %+v", workers, i, g, s)
				}
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", workers), fmtMs(res.Millis),
			fmtF(serial.Millis / res.Millis),
			fmt.Sprintf("%d", len(res.Groups)), fmt.Sprintf("%d", res.Qualifying),
		})
	}
	return []*Report{rep}, nil
}
