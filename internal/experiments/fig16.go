package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
)

// Fig16 reproduces Figure 16: the run-time overhead of obtaining individual
// selectivities, comparing the enumerator-based approach (explicit counter
// variables incremented in the loop) against non-invasive performance
// counters, over 1..10 predicates.
func Fig16(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 64 * cfg.VectorSize
	if cfg.Quick {
		rows = 16 * cfg.VectorSize
	}
	maxPreds := 10
	if cfg.Quick {
		maxPreds = 4
	}
	rng := datagen.NewRNG(cfg.Seed)
	tb := columnar.NewTable("wide")
	for i := 0; i < maxPreds; i++ {
		tb.MustAddColumn(columnar.NewInt64(fmt.Sprintf("c%d", i), datagen.UniformInt64(rng, rows, 0, 99)))
	}

	// PMU sampling cost per vector: one counter-group read.
	const pmuReadInstr = 50

	rep := &Report{
		ID:      "fig16",
		Title:   "Overhead of selectivity instrumentation (% of plain runtime, log-scale in the paper)",
		Columns: []string{"predicates", "enumerator_overhead_pct", "papi_overhead_pct"},
		Notes: []string{
			fmt.Sprintf("%d tuples, uniform int64 columns, all predicates 90%% selective", rows),
			"high selectivity makes every predicate position execute, so counter cost scales with depth",
			"enumerator: explicit counter increments per evaluation; papi: one PMU group read per vector",
		},
	}
	for p := 1; p <= maxPreds; p++ {
		ops := make([]exec.Op, p)
		for i := 0; i < p; i++ {
			ops[i] = &exec.Predicate{Col: tb.Column(fmt.Sprintf("c%d", i)), Op: exec.LT, I: 90}
		}
		q := &exec.Query{Table: tb, Ops: ops}

		r, err := newRig(cpu.ScaledXeon(), cfg)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		r.cold()
		plain, err := r.eng.Run(q)
		if err != nil {
			return nil, err
		}
		r.cold()
		inst, _, err := r.eng.RunInstrumented(q)
		if err != nil {
			return nil, err
		}
		// PAPI-style run: plain execution plus one counter read per vector.
		r.cold()
		c0 := r.cpu.Cycles()
		n := tb.NumRows()
		for lo := 0; lo < n; lo += cfg.VectorSize {
			hi := lo + cfg.VectorSize
			if hi > n {
				hi = n
			}
			if _, err := r.eng.RunVector(q, lo, hi); err != nil {
				return nil, err
			}
			r.cpu.Exec(pmuReadInstr)
		}
		papiCycles := r.cpu.Cycles() - c0

		enumPct := (float64(inst.Cycles) - float64(plain.Cycles)) / float64(plain.Cycles) * 100
		papiPct := (float64(papiCycles) - float64(plain.Cycles)) / float64(plain.Cycles) * 100
		if papiPct < 0 {
			papiPct = 0
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", enumPct),
			fmt.Sprintf("%.4f", papiPct),
		})
	}
	return []*Report{rep}, nil
}
