package core

import (
	"fmt"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/exec"
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Options configure the progressive optimization driver (§4.4, Figure 10).
type Options struct {
	// ReopInterval is the number of vectors between optimization cycles (the
	// paper sweeps 10, 75, 200). Zero disables re-optimization, reducing the
	// driver to the baseline execution pattern.
	ReopInterval int
	// Chain overrides the branch model (default: the paper's 6-state chain).
	Chain markov.Chain
	// Geometry overrides the cache model (default: derived from the engine's
	// CPU profile).
	Geometry cachemodel.Geometry
	// DisableValidation skips the execute-and-compare step after a reorder
	// (ablation: Figure 13c's random data set relies on reverting).
	DisableValidation bool
	// DisablePredictorReset keeps branch-predictor state across reorders
	// (ablation; real JIT recompilation moves branch addresses).
	DisablePredictorReset bool
	// SampleCostInstr is the instruction cost charged per PMU sample
	// (virtually free on real hardware; default 50).
	SampleCostInstr int
	// NMEvalCostInstr is the instruction cost charged per Nelder-Mead
	// objective evaluation, accounting for the optimizer's own CPU time
	// (default 80).
	NMEvalCostInstr int
	// ReorderCostInstr is charged per applied reorder: re-chaining
	// pre-compiled primitives, Vectorwise-style (default 2000).
	ReorderCostInstr int
	// ValidationTolerance is the fractional cycle regression tolerated
	// before reverting (default 0.02).
	ValidationTolerance float64
	// MaxStartsOverride overrides the estimator's start budget (0 keeps the
	// paper's m = 2p).
	MaxStartsOverride int
	// ExploreEvery enables the §4.5 correlation probe: after this many
	// consecutive optimization cycles that kept the same order, one vector
	// is executed under an exploratory rotation of that order. Correlated
	// attributes make the estimator's independence assumption lie; actually
	// running a different PEO measures the truth, and validation keeps the
	// probe order only if it is genuinely faster. Zero disables probing.
	ExploreEvery int
	// Trace, when non-nil, receives the optimizer's decision events (samples,
	// reorders, reverts, exploration probes, implementation switches) with
	// the PMU evidence that triggered them. Recording is a pure observer: it
	// charges no simulated work, so traced and untraced runs are
	// bit-identical.
	Trace *trace.Track
}

func (o *Options) setDefaults() {
	if o.SampleCostInstr <= 0 {
		o.SampleCostInstr = 50
	}
	if o.NMEvalCostInstr <= 0 {
		o.NMEvalCostInstr = 80
	}
	if o.ReorderCostInstr <= 0 {
		o.ReorderCostInstr = 2000
	}
	if o.ValidationTolerance <= 0 {
		o.ValidationTolerance = 0.02
	}
	if o.Chain.States() == 0 {
		o.Chain = markov.Paper()
	}
}

// Stats reports what the progressive driver did.
type Stats struct {
	// Vectors executed.
	Vectors int
	// Optimizations is the number of estimation cycles run.
	Optimizations int
	// Reorders is how many produced a changed order.
	Reorders int
	// Reverts is how many reorders validation rolled back.
	Reverts int
	// FinalOrder is the operator permutation (table-space indexes) in effect
	// at the end.
	FinalOrder []int
	// LastEstimate is the most recent selectivity estimate (current-order
	// space), nil before the first optimization.
	LastEstimate []float64
	// EstimatorEvaluations totals Nelder-Mead objective calls.
	EstimatorEvaluations int
	// Explorations counts §4.5 correlation probes issued.
	Explorations int
	// ConvergedAtCycles is the run's cycle clock at the last change the
	// optimizer applied (reorder, revert, exploration, or implementation
	// switch): the cycles spent before the run settled on its final plan.
	// Zero means the initial order was never changed — the signature of a
	// feedback-cache warm start that began at the converged order.
	ConvergedAtCycles uint64
	// Samples is the per-cycle observation series (bounded; see Sample): the
	// PMU evidence and selectivity estimate of every optimization cycle, in
	// order. The trace's optimizer track and the ext-* figures render the
	// same series.
	Samples []Sample
}

// RunProgressive executes the query vector-at-a-time with progressive
// re-optimization: every ReopInterval vectors it samples the PMU delta of
// the last vector, estimates per-operator selectivities, reorders operators
// by ascending rank (per-row load weight over estimated drop rate — plain
// ascending selectivity for all-predicate plans; see RankOrder), then
// validates the new order against the next vector and reverts on regression
// (§4.4).
//
// The returned result's counters and cycles include the sampling,
// estimation, and reordering overhead, charged to the simulated CPU.
func RunProgressive(e *exec.Engine, q *exec.Query, opt Options) (exec.Result, Stats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, Stats{}, err
	}
	opt.setDefaults()
	c := e.CPU()
	if opt.Geometry.LineSize == 0 {
		hier := c.Profile().Hierarchy
		opt.Geometry = cachemodel.Geometry{
			LineSize:      hier.L3.LineSize,
			CapacityLines: hier.L3.Lines(),
		}
	}

	nOps := len(q.Ops)
	curPerm := identity(nOps)
	prevPerm := identity(nOps)
	curQ := q
	aggWidths := aggColumnWidths(q)

	start := c.Sample()
	startCycles := c.Cycles()
	var out exec.Result
	var st Stats

	n := q.Table.NumRows()
	vs := e.VectorSize()
	numVectors := (n + vs - 1) / vs

	var prevVecCycles uint64
	pendingValidation := false
	// stableCycles counts consecutive optimization cycles that confirmed the
	// current order (drives the §4.5 correlation probe).
	stableCycles := 0
	// rejected remembers the last order validation reverted: proposing it
	// again would just repeat the measured regression, so the estimator's
	// (and the probe's) output is ignored while it equals this order. Only a
	// revert overwrites it, so a genuinely changed estimate still reorders.
	var rejected []int

	vec := 0
	for lo := 0; lo < n; lo += vs {
		hi := lo + vs
		if hi > n {
			hi = n
		}
		s0 := c.Sample()
		c0 := c.Cycles()
		vr, err := e.RunVector(curQ, lo, hi)
		if err != nil {
			return exec.Result{}, Stats{}, err
		}
		out.Qualifying += vr.Qualifying
		out.Sum += vr.Sum
		out.Vectors++
		vecCycles := c.Cycles() - c0
		delta := c.Sample().Sub(s0)
		vec++

		if pendingValidation && !opt.DisableValidation {
			pendingValidation = false
			limit := float64(prevVecCycles) * (1 + opt.ValidationTolerance)
			if float64(vecCycles) > limit && (hi-lo) == vs {
				// Deteriorated: re-establish the previous order and remember
				// the rejected one so it is not proposed again.
				rejected = append([]int(nil), curPerm...)
				curPerm = append([]int(nil), prevPerm...)
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, Stats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reverts++
				st.ConvergedAtCycles = c.Cycles() - startCycles
				traceDecision(opt.Trace, "revert", c.Cycles(), delta,
					trace.A("to", curPerm),
					trace.A("vec_cycles", vecCycles), trace.A("limit", limit))
			}
		}

		runOpt := opt.ReopInterval > 0 && vec%opt.ReopInterval == 0 && vec < numVectors
		if runOpt && opt.ExploreEvery > 0 && stableCycles >= opt.ExploreEvery {
			// §4.5 correlation probe: the estimator has confirmed the same
			// order ExploreEvery times in a row; its independence assumption
			// might be hiding a better order. Execute the next vector under
			// a rotation of the current order and let validation decide.
			// (A rotation that validation already rejected is skipped — the
			// cycle falls through to plain estimation instead.)
			if probe := rotate(curPerm); !equalPerm(probe, rejected) {
				stableCycles = 0
				st.Explorations++
				prevPerm = append([]int(nil), curPerm...)
				curPerm = probe
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, Stats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				pendingValidation = true
				st.ConvergedAtCycles = c.Cycles() - startCycles
				traceDecision(opt.Trace, "explore", c.Cycles(), delta,
					trace.A("from", prevPerm), trace.A("to", curPerm))
				prevVecCycles = vecCycles
				continue
			}
		}
		if runOpt {
			c.Exec(opt.SampleCostInstr)
			sample := SampleFromPMU(delta, hi-lo)
			cfg := EstimatorConfig{
				Widths:    opWidths(curQ),
				AggWidths: aggWidths,
				Geometry:  opt.Geometry,
				Chain:     opt.Chain,
				MaxStarts: opt.MaxStartsOverride,
			}
			est, err := EstimateSelectivities(sample, cfg)
			if err != nil {
				return exec.Result{}, Stats{}, err
			}
			st.Optimizations++
			st.EstimatorEvaluations += est.NMEvaluations
			st.LastEstimate = est.Sels
			c.Exec(est.NMEvaluations * opt.NMEvalCostInstr)
			smp := Sample{
				Cycles:   c.Cycles() - startCycles,
				Tuples:   hi - lo,
				Counters: delta.Project(paperGroup),
				Sels:     est.Sels,
			}
			st.addSample(smp)
			traceSample(opt.Trace, c.Cycles(), smp)
			order := RankOrder(LoadWeights(curQ), est.Sels)
			newPerm := compose(curPerm, order)
			if !equalPerm(newPerm, curPerm) && !equalPerm(newPerm, rejected) {
				stableCycles = 0
				prevPerm = append([]int(nil), curPerm...)
				curPerm = newPerm
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, Stats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reorders++
				pendingValidation = true
				st.ConvergedAtCycles = c.Cycles() - startCycles
				traceDecision(opt.Trace, "reorder", c.Cycles(), smp.Counters,
					trace.A("from", prevPerm), trace.A("to", curPerm),
					trace.A("est_sels", est.Sels))
			} else {
				stableCycles++
			}
		}
		prevVecCycles = vecCycles
	}

	out.Cycles = c.Cycles() - startCycles
	out.Millis = c.MillisOf(out.Cycles)
	out.Counters = c.Sample().Sub(start)
	st.Vectors = out.Vectors
	st.FinalOrder = curPerm
	if opt.Trace != nil {
		opt.Trace.Instant("plan-final", c.Cycles(),
			trace.A("order", curPerm), trace.A("reorders", st.Reorders),
			trace.A("converged_at", st.ConvergedAtCycles))
	}
	return out, st, nil
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// rotate returns the §4.5 exploration rotation of a permutation: the leading
// operator moves to the back.
func rotate(p []int) []int {
	out := append([]int(nil), p[1:]...)
	return append(out, p[0])
}

// compose maps a reorder expressed in current-order positions into
// table-space indexes: newPerm[i] = curPerm[order[i]].
func compose(curPerm, order []int) []int {
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = curPerm[o]
	}
	return out
}

func equalPerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func opWidths(q *exec.Query) []int {
	w := make([]int, len(q.Ops))
	for i, op := range q.Ops {
		w[i] = op.Width()
	}
	return w
}

func aggColumnWidths(q *exec.Query) []int {
	if q.Agg == nil {
		return nil
	}
	w := make([]int, len(q.Agg.Cols))
	for i, col := range q.Agg.Cols {
		w[i] = col.Width()
	}
	return w
}

// VerifyIdentity sanity-checks the §2.2.1 branch identity on a PMU delta:
// qualifying == 2n - branchesTaken. It returns an error when the engine and
// driver disagree, which would indicate counter corruption.
func VerifyIdentity(delta pmu.Sample, n int, qualifying int64) error {
	got := 2*int64(n) - int64(delta.Get(pmu.BrTaken))
	if got != qualifying {
		return fmt.Errorf("core: branch identity violated: 2n-BT=%d, qualifying=%d", got, qualifying)
	}
	return nil
}
