// Package exec implements the vectorized query execution engine: a
// multi-predicate branching scan (the compiled selection loop of §2.1),
// foreign-key join operators with locality-faithful probe patterns, sum
// aggregation, and an enumerator-instrumented scan variant for the overhead
// comparison of §5.7. Every column access and every conditional branch is
// mirrored into the simulated CPU, so the PMU counters the progressive
// optimizer samples reflect exactly what real hardware would count.
package exec

import (
	"fmt"
	"math"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// Op is one filtering operator in a query's evaluation order. Operators come
// in two forms: the tuple-at-a-time Eval (the seed engine's interpreted loop,
// where the engine retires the conditional branch that follows each
// evaluation) and the batch-kernel EvalBatch, which processes a whole
// selection vector in one call, amortizing dispatch. Both forms perform the
// same loads, retire the same instructions, and produce the same per-site
// branch-outcome streams, so PMU event counts are identical; only the
// interleaving of accesses across operators differs.
type Op interface {
	// Name labels the operator in plans and reports.
	Name() string
	// Eval performs the operator's loads and computation for row on c and
	// reports whether the tuple survives. The engine retires the conditional
	// branch that follows the evaluation — branch sites belong to positions
	// in the compiled loop.
	Eval(c *cpu.CPU, row int) bool
	// EvalBatch evaluates every row in sel (ascending table row ids),
	// retiring the conditional branch at the given site per evaluation, and
	// appends the survivors to out (length 0, capacity >= len(sel)),
	// returning the survivor selection. In batch form the operator retires
	// its own branch so the whole vector is processed in one call.
	EvalBatch(c *cpu.CPU, site int, sel, out []int32) []int32
	// Width returns the byte width of the operator's primary input column
	// (used by the cost models).
	Width() int
}

// CmpOp is a comparison operator for predicates.
type CmpOp int

// Comparison operators.
const (
	// LE is <=.
	LE CmpOp = iota
	// LT is <.
	LT
	// GE is >=.
	GE
	// GT is >.
	GT
	// EQ is ==.
	EQ
)

// String returns the operator's SQL spelling.
func (o CmpOp) String() string {
	switch o {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "="
	}
	return fmt.Sprintf("cmp(%d)", int(o))
}

// Predicate compares one column against a constant. Integer-kind columns
// (Int64, Int32, Date) compare against I; Float64 columns against F.
type Predicate struct {
	// Col is the input column; it must be bound before execution.
	Col *columnar.Column
	// Op is the comparison.
	Op CmpOp
	// I is the bound for integer-kind columns.
	I int64
	// F is the bound for Float64 columns.
	F float64
	// ExtraCostInstr models an expensive predicate (e.g. a string match or
	// UDF): additional instructions retired per evaluation.
	ExtraCostInstr int
	// Label overrides the generated name.
	Label string
	// ScanBase/ScanWidth, when ScanWidth > 0, redirect the predicate's load
	// simulation to a packed (encoded) image of the column at ScanBase with
	// ScanWidth bytes per row — the compressed-scan mode of a stored table,
	// where the kernel compares against dictionary codes or
	// frame-of-reference deltas and therefore streams the narrower image
	// through the cache hierarchy. Host-side comparisons stay on the decoded
	// slices (the encodings are order- and equality-exact per block, so
	// outcomes are identical); only the simulated address stream changes.
	ScanBase  uint64
	ScanWidth int
}

// scanLayout returns the (base, width) the predicate's loads stream through
// the simulated hierarchy: the packed image when compressed scanning is
// configured, the decoded column otherwise.
func (p *Predicate) scanLayout() (uint64, uint64) {
	if p.ScanWidth > 0 {
		return p.ScanBase, uint64(p.ScanWidth)
	}
	return p.Col.Base(), uint64(p.Col.Width())
}

// Name implements Op.
func (p *Predicate) Name() string {
	if p.Label != "" {
		return p.Label
	}
	if p.Col.Kind() == columnar.Float64 {
		return fmt.Sprintf("%s %s %g", p.Col.Name(), p.Op, p.F)
	}
	return fmt.Sprintf("%s %s %d", p.Col.Name(), p.Op, p.I)
}

// Width implements Op.
func (p *Predicate) Width() int { return p.Col.Width() }

// Eval implements Op: one load of the column value plus any extra cost, then
// the comparison (the compare+jump instructions are charged by the engine's
// branch step). The value fetch goes through the raw typed slice for the
// column's kind and the comparison through a small inlinable helper — this
// runs once per (row, operator) in the scalar engine.
func (p *Predicate) Eval(c *cpu.CPU, row int) bool {
	base, w := p.scanLayout()
	c.Load(base + uint64(row)*w)
	if p.ExtraCostInstr > 0 {
		c.Exec(p.ExtraCostInstr)
	}
	switch p.Col.Kind() {
	case columnar.Float64:
		return cmp(p.Op, p.Col.F64()[row], p.F)
	case columnar.Int64:
		return cmp(p.Op, p.Col.I64()[row], p.I)
	default: // Int32, Date
		return cmp(p.Op, int64(p.Col.I32()[row]), p.I)
	}
}

// cmp applies one comparison operator; small enough to inline into the
// per-row evaluation.
func cmp[T int64 | float64](op CmpOp, v, bound T) bool {
	switch op {
	case LE:
		return v <= bound
	case LT:
		return v < bound
	case GE:
		return v >= bound
	case GT:
		return v > bound
	case EQ:
		return v == bound
	}
	panic(fmt.Sprintf("exec: unknown comparison %d", int(op)))
}

// EvalBatch implements Op: the batch kernel hoists the column-kind and
// comparison dispatch out of the row loop, then streams the selection
// vector through a monomorphic compare-and-branch loop.
func (p *Predicate) EvalBatch(c *cpu.CPU, site int, sel, out []int32) []int32 {
	if p.ExtraCostInstr > 0 {
		c.Exec(p.ExtraCostInstr * len(sel))
	}
	base, w := p.scanLayout()
	switch p.Col.Kind() {
	case columnar.Float64:
		return predLoop(c, site, sel, out, p.Col.F64(), base, w, p.Op, p.F)
	case columnar.Int64:
		return predLoop(c, site, sel, out, p.Col.I64(), base, w, p.Op, p.I)
	default: // Int32, Date
		if p.I > math.MaxInt32 || p.I < math.MinInt32 {
			return constLoop(c, site, sel, out, base, w, wideBoundPasses(p.Op, p.I))
		}
		return predLoop(c, site, sel, out, p.Col.I32(), base, w, p.Op, int32(p.I))
	}
}

// selLoads simulates the column loads of one predicate batch kernel over the
// selection. Hoisting the loads ahead of the compare/branch phase is
// count-exact (branch retirement touches no cache state and loads touch no
// predictor state), and a dense selection becomes a run-batched stream.
func selLoads(c *cpu.CPU, sel []int32, base, w uint64) {
	if n := len(sel); n > 0 && int(sel[n-1])-int(sel[0]) == n-1 {
		c.LoadSeq(base+uint64(sel[0])*w, int(w), n)
		return
	}
	c.LoadSel(base, int(w), sel)
}

// predLoop is the monomorphic inner loop of a predicate batch kernel: per
// selected row one load, one comparison, and one retired conditional branch,
// exactly mirroring Eval plus the engine's branch step.
func predLoop[T int32 | int64 | float64](c *cpu.CPU, site int, sel, out []int32, vals []T, base, w uint64, op CmpOp, bound T) []int32 {
	selLoads(c, sel, base, w)
	switch op {
	case LE:
		for _, r := range sel {
			ok := vals[r] <= bound
			c.CondBranch(site, !ok)
			if ok {
				out = append(out, r)
			}
		}
	case LT:
		for _, r := range sel {
			ok := vals[r] < bound
			c.CondBranch(site, !ok)
			if ok {
				out = append(out, r)
			}
		}
	case GE:
		for _, r := range sel {
			ok := vals[r] >= bound
			c.CondBranch(site, !ok)
			if ok {
				out = append(out, r)
			}
		}
	case GT:
		for _, r := range sel {
			ok := vals[r] > bound
			c.CondBranch(site, !ok)
			if ok {
				out = append(out, r)
			}
		}
	case EQ:
		for _, r := range sel {
			ok := vals[r] == bound
			c.CondBranch(site, !ok)
			if ok {
				out = append(out, r)
			}
		}
	default:
		panic(fmt.Sprintf("exec: unknown comparison %d", int(op)))
	}
	return out
}

// constLoop handles the degenerate kernel where the comparison outcome is
// the same for every row (an integer bound outside the column's value range):
// the loads and branches are still simulated — as one run and one
// constant-outcome branch batch — only the compare is constant.
func constLoop(c *cpu.CPU, site int, sel, out []int32, base, w uint64, ok bool) []int32 {
	selLoads(c, sel, base, w)
	c.CondBranchN(site, !ok, len(sel))
	if ok {
		out = append(out, sel...)
	}
	return out
}

// wideBoundPasses resolves a comparison of any int32-kind value against a
// bound outside the int32 range.
func wideBoundPasses(op CmpOp, bound int64) bool {
	if bound > math.MaxInt32 {
		return op == LE || op == LT // v <= huge, v < huge
	}
	return op == GE || op == GT // v >= -huge, v > -huge
}

// evalMask is the branch-free batch kernel: every row in [lo, hi) is loaded
// and compared, and the outcome is ANDed into mask (no data-dependent
// branches are retired). The ExtraCostInstr charge matches Eval's.
func (p *Predicate) evalMask(c *cpu.CPU, lo, hi int, mask []bool) {
	n := hi - lo
	if p.ExtraCostInstr > 0 {
		c.Exec(p.ExtraCostInstr * n)
	}
	base, w := p.scanLayout()
	// The whole vector is loaded unconditionally: one run-batched stream.
	c.LoadSeq(base+uint64(lo)*w, int(w), n)
	switch p.Col.Kind() {
	case columnar.Float64:
		maskLoop(lo, hi, mask, p.Col.F64(), p.Op, p.F)
	case columnar.Int64:
		maskLoop(lo, hi, mask, p.Col.I64(), p.Op, p.I)
	default: // Int32, Date
		if p.I > math.MaxInt32 || p.I < math.MinInt32 {
			if !wideBoundPasses(p.Op, p.I) {
				for i := range mask {
					mask[i] = false
				}
			}
			return
		}
		maskLoop(lo, hi, mask, p.Col.I32(), p.Op, int32(p.I))
	}
}

// maskLoop is the monomorphic compare loop of the branch-free batch kernel
// (loads were streamed by the caller).
func maskLoop[T int32 | int64 | float64](lo, hi int, mask []bool, vals []T, op CmpOp, bound T) {
	switch op {
	case LE:
		for r := lo; r < hi; r++ {
			mask[r-lo] = mask[r-lo] && vals[r] <= bound
		}
	case LT:
		for r := lo; r < hi; r++ {
			mask[r-lo] = mask[r-lo] && vals[r] < bound
		}
	case GE:
		for r := lo; r < hi; r++ {
			mask[r-lo] = mask[r-lo] && vals[r] >= bound
		}
	case GT:
		for r := lo; r < hi; r++ {
			mask[r-lo] = mask[r-lo] && vals[r] > bound
		}
	case EQ:
		for r := lo; r < hi; r++ {
			mask[r-lo] = mask[r-lo] && vals[r] == bound
		}
	default:
		panic(fmt.Sprintf("exec: unknown comparison %d", int(op)))
	}
}

// TrueSelectivity scans the column directly (no simulation) and returns the
// predicate's standalone selectivity; used by experiments to label
// configurations and by tests as ground truth.
func (p *Predicate) TrueSelectivity() float64 {
	n := p.Col.Len()
	if n == 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if p.passRaw(i) {
			match++
		}
	}
	return float64(match) / float64(n)
}

func (p *Predicate) passRaw(row int) bool {
	if p.Col.Kind() == columnar.Float64 {
		v := p.Col.F64()[row]
		switch p.Op {
		case LE:
			return v <= p.F
		case LT:
			return v < p.F
		case GE:
			return v >= p.F
		case GT:
			return v > p.F
		case EQ:
			return v == p.F
		}
	}
	v := p.Col.Int64At(row)
	switch p.Op {
	case LE:
		return v <= p.I
	case LT:
		return v < p.I
	case GE:
		return v >= p.I
	case GT:
		return v > p.I
	case EQ:
		return v == p.I
	}
	return false
}
