// Package datagen produces the value distributions the paper's evaluation
// sweeps over: uniform and zipfian draws, sorted and windowed-Knuth-shuffled
// orderings (the "sortedness" axis of Figures 13 and 14), clustered
// redistribution within time windows, and correlated attribute pairs.
package datagen

import (
	"fmt"
	"math/rand"
)

// NewRNG returns a deterministic source for the given seed; every generator
// in this package takes an explicit *rand.Rand so experiments are replayable.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// UniformInt64 returns n draws uniform in [lo, hi] inclusive.
func UniformInt64(rng *rand.Rand, n int, lo, hi int64) []int64 {
	if hi < lo {
		panic(fmt.Sprintf("datagen: empty range [%d,%d]", lo, hi))
	}
	out := make([]int64, n)
	span := hi - lo + 1
	for i := range out {
		out[i] = lo + rng.Int63n(span)
	}
	return out
}

// UniformInt32 returns n draws uniform in [lo, hi] inclusive.
func UniformInt32(rng *rand.Rand, n int, lo, hi int32) []int32 {
	if hi < lo {
		panic(fmt.Sprintf("datagen: empty range [%d,%d]", lo, hi))
	}
	out := make([]int32, n)
	span := int64(hi) - int64(lo) + 1
	for i := range out {
		out[i] = lo + int32(rng.Int63n(span))
	}
	return out
}

// UniformFloat64 returns n draws uniform in [lo, hi).
func UniformFloat64(rng *rand.Rand, n int, lo, hi float64) []float64 {
	if hi < lo {
		panic(fmt.Sprintf("datagen: empty range [%v,%v)", lo, hi))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// ZipfInt64 returns n zipfian draws over [0, max] with skew parameter s > 1
// being flat-ish near 1 and increasingly skewed as it grows.
func ZipfInt64(rng *rand.Rand, n int, s float64, max uint64) []int64 {
	z := rand.NewZipf(rng, s, 1, max)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// Ascending returns 0,1,...,n-1 as int64.
func Ascending(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// WindowPermutation returns a permutation of [0,n) produced by a windowed
// Knuth shuffle: position i swaps with a uniform position in
// [i, min(i+window, n)). window >= n yields a full Fisher-Yates shuffle;
// window <= 1 yields the identity. Small windows preserve coarse order —
// the paper's "shuffle distance" knob (Figure 14's 1T, CL, 100T, 1KT, L1,
// L2, L3, Mem axis).
func WindowPermutation(rng *rand.Rand, n, window int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if window <= 1 {
		return perm
	}
	for i := 0; i < n-1; i++ {
		hi := i + window
		if hi > n {
			hi = n
		}
		j := i + rng.Intn(hi-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// GroupPermutation returns a permutation that shuffles only within runs of
// equal group ids (groups must be contiguous, e.g. a month id over a
// date-sorted column). This is the paper's "clustered" data set of Figure
// 13b: rows are redistributed within their month but months stay in order.
func GroupPermutation(rng *rand.Rand, groups []int32) []int {
	n := len(groups)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	start := 0
	for start < n {
		end := start + 1
		for end < n && groups[end] == groups[start] {
			end++
		}
		// Fisher-Yates within [start, end).
		for i := end - 1; i > start; i-- {
			j := start + rng.Intn(i-start+1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		start = end
	}
	return perm
}

// ApplyPermInt64 returns data reordered so out[i] = data[perm[i]].
func ApplyPermInt64(data []int64, perm []int) []int64 {
	out := make([]int64, len(data))
	for i, p := range perm {
		out[i] = data[p]
	}
	return out
}

// ApplyPermInt32 returns data reordered so out[i] = data[perm[i]].
func ApplyPermInt32(data []int32, perm []int) []int32 {
	out := make([]int32, len(data))
	for i, p := range perm {
		out[i] = data[p]
	}
	return out
}

// ApplyPermFloat64 returns data reordered so out[i] = data[perm[i]].
func ApplyPermFloat64(data []float64, perm []int) []float64 {
	out := make([]float64, len(data))
	for i, p := range perm {
		out[i] = data[p]
	}
	return out
}

// Correlated returns a column correlated with base: each output value is
// base[i] with probability corr (in [0,1]) and an independent uniform draw
// from [lo, hi] otherwise. corr=1 duplicates base; corr=0 is independent.
// Correlated predicates over such pairs violate the independence assumption
// the paper's §4.5 discusses.
func Correlated(rng *rand.Rand, base []int64, corr float64, lo, hi int64) []int64 {
	if corr < 0 || corr > 1 {
		panic(fmt.Sprintf("datagen: correlation %v outside [0,1]", corr))
	}
	out := make([]int64, len(base))
	span := hi - lo + 1
	for i, b := range base {
		if rng.Float64() < corr {
			v := b
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			out[i] = v
		} else {
			out[i] = lo + rng.Int63n(span)
		}
	}
	return out
}

// PiecewiseSelectivity returns n boolean-as-int64 values (1 = qualifies)
// where the qualification probability changes per contiguous segment: seg[k]
// applies to rows [k*n/len(seg), (k+1)*n/len(seg)). Used to construct skewed
// data whose best PEO changes mid-scan (§4.5, §5.4).
func PiecewiseSelectivity(rng *rand.Rand, n int, seg []float64) []int64 {
	if len(seg) == 0 {
		panic("datagen: no segments")
	}
	out := make([]int64, n)
	for i := range out {
		k := i * len(seg) / n
		if k >= len(seg) {
			k = len(seg) - 1
		}
		if rng.Float64() < seg[k] {
			out[i] = 1
		}
	}
	return out
}
