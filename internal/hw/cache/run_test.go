package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// Property test for the run-batched load protocol: LoadRun, LoadSel, and
// LoadStream must produce bit-identical counters, cache contents, and hit
// levels to the equivalent sequence of per-element Load calls, across random
// strides, selections, and cache geometries, with the prefetcher on and off.

func randHierCfg(rng *rand.Rand) HierarchyConfig {
	lineSize := 32 << rng.Intn(2) // 32 or 64
	mk := func(name string, kb, ways, lat int) Config {
		return Config{Name: name, SizeBytes: kb << 10, LineSize: lineSize, Ways: ways, LatencyCycles: lat}
	}
	ways := []int{2, 4, 8, 16}
	return HierarchyConfig{
		L1:               mk("L1", 1, ways[rng.Intn(3)], 4),
		L2:               mk("L2", 4, ways[rng.Intn(4)], 12),
		L3:               mk("L3", 16, ways[rng.Intn(4)], 36),
		MemLatencyCycles: 180,
		PrefetchDisabled: rng.Intn(2) == 0,
	}
}

// replayHits collects the per-level hit counts of per-element Load calls.
func replayHits(h *Hierarchy, addrs []uint64) RunHits {
	var rh RunHits
	for _, a := range addrs {
		rh.add(h.Load(a).Level)
	}
	return rh
}

func sameState(t *testing.T, label string, a, b *Hierarchy) {
	t.Helper()
	if !reflect.DeepEqual(a.Counters(), b.Counters()) {
		t.Fatalf("%s: counters diverge:\n per-elem %+v\n batched  %+v", label, a.Counters(), b.Counters())
	}
	for i, lv := range []*Level{a.l1, a.l2, a.l3} {
		blv := []*Level{b.l1, b.l2, b.l3}[i]
		if !reflect.DeepEqual(lv.tags, blv.tags) || !reflect.DeepEqual(lv.ptags, blv.ptags) ||
			!reflect.DeepEqual(lv.prev, blv.prev) || !reflect.DeepEqual(lv.next, blv.next) ||
			!reflect.DeepEqual(lv.heads, blv.heads) {
			t.Fatalf("%s: %s contents diverge", label, lv.cfg.Name)
		}
	}
	if a.lastLine != b.lastLine || a.lastSlot != b.lastSlot {
		t.Fatalf("%s: memo diverges: (%d,%d) vs (%d,%d)",
			label, a.lastLine, a.lastSlot, b.lastLine, b.lastSlot)
	}
}

func TestLoadRunMatchesPerElementLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		cfg := randHierCfg(rng)
		ref, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A mixed schedule: strided runs, selection gathers, arbitrary
		// streams, and single loads interleaved so each kind starts from the
		// state the previous ones left (memo carry-over included).
		for step := 0; step < 30; step++ {
			switch rng.Intn(4) {
			case 0: // strided run
				start := uint64(rng.Intn(1 << 20))
				stride := []int{1, 4, 8, 24, 64, 100, 200}[rng.Intn(7)]
				n := rng.Intn(300) + 1
				addrs := make([]uint64, n)
				for i := range addrs {
					addrs[i] = start + uint64(i)*uint64(stride)
				}
				want := replayHits(ref, addrs)
				got := bat.LoadRun(start, stride, n)
				if want != got {
					t.Fatalf("trial %d step %d: LoadRun hits %+v, per-element %+v", trial, step, got, want)
				}
			case 1: // selection gather (ascending rows, with same-line clusters)
				base := uint64(rng.Intn(1 << 20))
				stride := []int{4, 8, 24}[rng.Intn(3)]
				nrows := rng.Intn(200) + 1
				rows := make([]int32, 0, nrows)
				row := int32(rng.Intn(8))
				for len(rows) < nrows {
					rows = append(rows, row)
					row += int32(rng.Intn(20))
				}
				addrs := make([]uint64, len(rows))
				for i, r := range rows {
					addrs[i] = base + uint64(r)*uint64(stride)
				}
				want := replayHits(ref, addrs)
				got := bat.LoadSel(base, stride, rows)
				if want != got {
					t.Fatalf("trial %d step %d: LoadSel hits %+v, per-element %+v", trial, step, got, want)
				}
			case 2: // arbitrary stream with repeats (probe-like)
				n := rng.Intn(200) + 1
				addrs := make([]uint64, n)
				for i := range addrs {
					addrs[i] = uint64(rng.Intn(1<<16)) * 8
					if i > 0 && rng.Intn(3) == 0 {
						addrs[i] = addrs[i-1] // same-line repeat
					}
				}
				want := replayHits(ref, addrs)
				got := bat.LoadStream(addrs)
				if want != got {
					t.Fatalf("trial %d step %d: LoadStream hits %+v, per-element %+v", trial, step, got, want)
				}
			default: // single load
				addr := uint64(rng.Intn(1 << 20))
				a, b := ref.Load(addr), bat.Load(addr)
				if a != b {
					t.Fatalf("trial %d step %d: Load %+v vs %+v", trial, step, a, b)
				}
			}
			sameState(t, "after step", ref, bat)
		}
	}
}
