package experiments

import (
	"fmt"
	"strings"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
	"progopt/internal/trace"
)

// ExtTrace renders the observability layer's convergence timeline as a
// figure: Q6 started from its slowest PEO, fixed order v. progressive, with
// every optimizer decision event and retained PMU sample laid out against the
// simulated clock. The fixed run contributes only its final makespan (no
// decisions); the progressive run's rows show the sampling evidence (branch
// mispredictions, L3 accesses), the selectivity estimates, and the reorder
// events they triggered, ending in the plan-final state. The experiment
// validates its own trace: it fails unless the optimizer track carries at
// least one reorder event and the event clock is monotone.
func ExtTrace(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		cfg.Trace = trace.New()
	}
	rows := 150 * cfg.VectorSize
	if cfg.Quick {
		rows = 30 * cfg.VectorSize
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	d = d.ReorderLineitem(tpch.OrderingRandom, cfg.Seed+1)
	// The 4-predicate Q6 at 1% shipdate selectivity: the clear separation
	// guarantees the progressive optimizer reorders away from the worst
	// initial PEO, which the self-validation below depends on.
	q, err := exec.Q6Shipdate(d, d.ShipdateCutoff(0.01))
	if err != nil {
		return nil, err
	}
	sels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		sels[i] = op.(*exec.Predicate).TrueSelectivity()
	}
	asc := core.AscendingOrder(sels)
	desc := make([]int, len(asc))
	for i, v := range asc {
		desc[len(asc)-1-i] = v
	}
	const reop = 10

	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	if err := r.bind(q); err != nil {
		return nil, err
	}
	base, err := r.measureBaseline(q, desc)
	if err != nil {
		return nil, err
	}
	// The serial driver stamps optimizer events with the core's absolute
	// clock (which already includes the baseline run above); rebase them to
	// the progressive run's start so the timeline aligns with its makespan.
	// The parallel stepper's accounted clock is already run-relative.
	var rebase uint64
	if r.par == nil {
		rebase = r.cpu.Cycles()
	}
	prog, st, err := r.measureProgressive(q, desc, reop)
	if err != nil {
		return nil, err
	}
	if prog.Qualifying != base.Qualifying {
		return nil, fmt.Errorf("ext-trace: traced progressive run diverged: %d qualifying v. fixed %d",
			prog.Qualifying, base.Qualifying)
	}

	// Self-validation: the optimizer track (written only by the progressive
	// run) must carry at least one reorder and a monotone event clock.
	events := r.opt.Events()
	reorders := 0
	var prev uint64
	for i, ev := range events {
		if ev.Name == "reorder" {
			reorders++
		}
		if i > 0 && ev.Start < prev {
			return nil, fmt.Errorf("ext-trace: optimizer event clock not monotone: %q at %d after %d",
				ev.Name, ev.Start, prev)
		}
		prev = ev.Start
	}
	if reorders == 0 {
		return nil, fmt.Errorf("ext-trace: expected at least one reorder event on the optimizer track, got 0 (%d events)",
			len(events))
	}
	if len(st.Samples) == 0 {
		return nil, fmt.Errorf("ext-trace: progressive run retained no PMU samples")
	}

	rep := &Report{
		ID:      "ext-trace",
		Title:   "Extension: traced convergence timeline — optimizer decisions and PMU series v. simulated cycles",
		Columns: []string{"series", "event", "cycles", "ms", "tuples", "br_mp", "l3_access", "detail"},
		Notes: []string{
			fmt.Sprintf("%d lineitems (random order), Q6 from its slowest PEO %s, ReopInt %d", rows, fmtPerm(desc), reop),
			fmt.Sprintf("validated: %d reorder event(s), monotone clock over %d optimizer events, %d retained samples",
				reorders, len(events), len(st.Samples)),
			"fixed series has no decision rows: its only event is the final makespan",
		},
	}
	for _, ev := range events {
		at := ev.Start
		if at >= rebase {
			at -= rebase
		}
		rep.Rows = append(rep.Rows, []string{
			"progressive", ev.Name,
			fmt.Sprintf("%d", at), fmtMs(r.millis(at)),
			fmtArgInt(ev, "tuples"),
			fmtU64(argU64(ev, "br_mp_taken") + argU64(ev, "br_mp_not_taken")),
			fmtU64(argU64(ev, "l3_access")),
			eventDetail(ev),
		})
	}
	rep.Rows = append(rep.Rows,
		[]string{"progressive", "done", fmt.Sprintf("%d", prog.Cycles), fmtMs(r.millis(prog.Cycles)), "", "", "",
			fmt.Sprintf("%d reorders, converged at %d cyc", st.Reorders, st.ConvergedAtCycles)},
		[]string{"fixed", "done", fmt.Sprintf("%d", base.Cycles), fmtMs(r.millis(base.Cycles)), "", "", "",
			"fixed worst-PEO makespan"},
	)
	return []*Report{rep}, nil
}

// evArg looks up one event argument by key.
func evArg(ev trace.Event, key string) (any, bool) {
	for _, a := range ev.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return nil, false
}

// argU64 coerces a numeric event argument to uint64 (0 when absent).
func argU64(ev trace.Event, key string) uint64 {
	v, ok := evArg(ev, key)
	if !ok {
		return 0
	}
	switch x := v.(type) {
	case uint64:
		return x
	case int:
		return uint64(x)
	case int64:
		return uint64(x)
	}
	return 0
}

// fmtU64 renders a counter cell ("" for zero, keeping decision rows sparse).
func fmtU64(v uint64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%d", v)
}

// fmtArgInt renders an integer argument cell ("" when absent).
func fmtArgInt(ev trace.Event, key string) string {
	v, ok := evArg(ev, key)
	if !ok {
		return ""
	}
	if n, ok := v.(int); ok {
		return fmt.Sprintf("%d", n)
	}
	return ""
}

// eventDetail summarizes the plan-shaped payload of a decision event: orders
// for reorder/revert/plan-final, selectivity estimates for samples.
func eventDetail(ev trace.Event) string {
	var parts []string
	if v, ok := evArg(ev, "from"); ok {
		if p, ok := v.([]int); ok {
			parts = append(parts, "from "+fmtPerm(p))
		}
	}
	if v, ok := evArg(ev, "to"); ok {
		if p, ok := v.([]int); ok {
			parts = append(parts, "to "+fmtPerm(p))
		}
	}
	if v, ok := evArg(ev, "order"); ok {
		if p, ok := v.([]int); ok {
			parts = append(parts, "order "+fmtPerm(p))
		}
	}
	if v, ok := evArg(ev, "impl"); ok {
		if s, ok := v.(string); ok {
			parts = append(parts, "impl "+s)
		}
	}
	if v, ok := evArg(ev, "est_sels"); ok {
		if s, ok := v.([]float64); ok && len(s) > 0 {
			cells := make([]string, len(s))
			for i, x := range s {
				cells[i] = fmt.Sprintf("%.3f", x)
			}
			parts = append(parts, "est "+strings.Join(cells, "/"))
		}
	}
	return strings.Join(parts, "; ")
}
