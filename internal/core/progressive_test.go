package core

import (
	"math"
	"testing"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

func progDataset(t *testing.T, rows int) *tpch.Dataset {
	t.Helper()
	return tpch.MustGenerate(tpch.Config{Lineitems: rows, Seed: 11})
}

func progEngine(t *testing.T) *exec.Engine {
	t.Helper()
	return exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 2048)
}

// worstOrderQ6 returns Q6 with a deliberately bad initial PEO: the paper's
// motivating situation.
func worstOrderQ6(t *testing.T, d *tpch.Dataset) (*exec.Query, []float64) {
	t.Helper()
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	sels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		sels[i] = op.(*exec.Predicate).TrueSelectivity()
	}
	// Descending selectivity = slowest PEO.
	desc := AscendingOrder(sels)
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	worst, err := q.WithOrder(desc)
	if err != nil {
		t.Fatal(err)
	}
	wsels := make([]float64, len(desc))
	for i, p := range desc {
		wsels[i] = sels[p]
	}
	return worst, wsels
}

func TestRunProgressiveCorrectness(t *testing.T) {
	d := progDataset(t, 40000)
	e := progEngine(t)
	q, _ := worstOrderQ6(t, d)
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	// Ground truth from a plain run on a fresh engine.
	e2 := progEngine(t)
	if err := e2.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	want, err := e2.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RunProgressive(e, q, Options{ReopInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Qualifying != want.Qualifying {
		t.Errorf("progressive qualifying %d, want %d", got.Qualifying, want.Qualifying)
	}
	if math.Abs(got.Sum-want.Sum) > math.Abs(want.Sum)*1e-9 {
		t.Errorf("progressive sum %v, want %v", got.Sum, want.Sum)
	}
	if st.Vectors != want.Vectors {
		t.Errorf("vectors %d, want %d", st.Vectors, want.Vectors)
	}
	if st.Optimizations == 0 {
		t.Error("no optimization cycles ran")
	}
}

// TestRunProgressiveBeatsBadOrder is the headline claim (Figure 11): from a
// worst-case initial PEO, progressive optimization converges toward the good
// order and beats the fixed bad order.
func TestRunProgressiveBeatsBadOrder(t *testing.T) {
	d := progDataset(t, 80000)
	q, wsels := worstOrderQ6(t, d)

	eBase := progEngine(t)
	if err := eBase.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	base, err := eBase.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	eProg := progEngine(t)
	if err := eProg.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	prog, st, err := RunProgressive(eProg, q, Options{ReopInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reorders == 0 {
		t.Fatal("progressive never reordered a worst-case PEO")
	}
	if prog.Cycles >= base.Cycles {
		t.Errorf("progressive (%d cycles) not faster than worst-case baseline (%d)",
			prog.Cycles, base.Cycles)
	}
	// The final order should put the most selective predicate early: compare
	// against the true ascending order of the initial (worst) arrangement.
	wantFirst := AscendingOrder(wsels)[0]
	if st.FinalOrder[0] != wantFirst {
		t.Logf("final order %v; most selective was %d (sels %v)", st.FinalOrder, wantFirst, wsels)
		// Tolerate near-ties: check the chosen first predicate's selectivity
		// is within 0.1 of the minimum.
		minSel := wsels[wantFirst]
		if wsels[st.FinalOrder[0]] > minSel+0.1 {
			t.Errorf("converged to first predicate with sel %v, min is %v",
				wsels[st.FinalOrder[0]], minSel)
		}
	}
}

func TestRunProgressiveNearNoopOnGoodOrder(t *testing.T) {
	// Starting from the best PEO on a STATIONARY (randomly ordered) data
	// set, progressive optimization must not make things much worse
	// (robustness, Figure 11's right-hand side). On weakly clustered data
	// the local optimum legitimately moves mid-scan, so this property is
	// specific to stationary selectivities.
	d := progDataset(t, 60000).ReorderLineitem(tpch.OrderingRandom, 21)
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	sels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		sels[i] = op.(*exec.Predicate).TrueSelectivity()
	}
	best, err := q.WithOrder(AscendingOrder(sels))
	if err != nil {
		t.Fatal(err)
	}

	eBase := progEngine(t)
	if err := eBase.BindQuery(best); err != nil {
		t.Fatal(err)
	}
	base, err := eBase.Run(best)
	if err != nil {
		t.Fatal(err)
	}
	eProg := progEngine(t)
	if err := eProg.BindQuery(best); err != nil {
		t.Fatal(err)
	}
	prog, _, err := RunProgressive(eProg, best, Options{ReopInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if float64(prog.Cycles) > float64(base.Cycles)*1.15 {
		t.Errorf("progressive on best order %d cycles vs baseline %d (>15%% regression)",
			prog.Cycles, base.Cycles)
	}
}

func TestRunProgressiveZeroIntervalIsBaseline(t *testing.T) {
	d := progDataset(t, 20000)
	q, _ := worstOrderQ6(t, d)
	e := progEngine(t)
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	res, st, err := RunProgressive(e, q, Options{ReopInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Optimizations != 0 || st.Reorders != 0 {
		t.Error("ReopInterval=0 must disable optimization")
	}
	if res.Qualifying == 0 {
		t.Error("query produced nothing")
	}
	for i, v := range st.FinalOrder {
		if v != i {
			t.Error("order changed without optimization")
		}
	}
}

func TestRunProgressiveValidationReverts(t *testing.T) {
	// Force bogus reorders by disabling the estimator's information: use a
	// random data set where per-vector estimates fluctuate, and check that
	// validation keeps revert counts consistent (reverts <= reorders).
	d := progDataset(t, 40000).ReorderLineitem(tpch.OrderingRandom, 3)
	q, _ := worstOrderQ6(t, d)
	e := progEngine(t)
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	_, st, err := RunProgressive(e, q, Options{ReopInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reverts > st.Reorders {
		t.Errorf("reverts %d exceed reorders %d", st.Reverts, st.Reorders)
	}
}

func TestComposePermutations(t *testing.T) {
	cur := []int{2, 0, 1}   // table indexes by position
	order := []int{1, 2, 0} // reorder in position space
	got := compose(cur, order)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compose = %v, want %v", got, want)
		}
	}
}

func TestDetectSortedness(t *testing.T) {
	g := cachemodel.MustGeometry(64, 16384)
	rel, width, probes := 4<<20, 8, 16<<20
	pred := g.RandomMisses(rel, width, probes)
	if pred <= 0 {
		t.Fatal("degenerate prediction")
	}
	if rep := DetectSortedness(g, rel, width, probes, pred*0.05); rep.Class != CoClustered {
		t.Errorf("5%% of predicted misses classified %v, want co-clustered", rep.Class)
	}
	if rep := DetectSortedness(g, rel, width, probes, pred*0.5); rep.Class != PartiallyClustered {
		t.Errorf("50%% classified %v, want partially-clustered", rep.Class)
	}
	if rep := DetectSortedness(g, rel, width, probes, pred*0.98); rep.Class != RandomAccess {
		t.Errorf("98%% classified %v, want random", rep.Class)
	}
	if rep := DetectSortedness(g, rel, width, probes, pred*0.5); math.Abs(rep.Ratio-0.5) > 1e-9 {
		t.Errorf("ratio %v, want 0.5", rep.Ratio)
	}
}

func TestRecommendJoinOrderPrefersCoClustered(t *testing.T) {
	// The §5.6 scenario: part is 8x smaller (size-based optimizers pick it
	// first) but orders is co-clustered (few sampled misses).
	g := cachemodel.MustGeometry(64, 16384)
	probes := 1 << 20
	orders := JoinProbeStats{
		Name: "orders", Selectivity: 0.5, Probes: probes,
		SampledMisses: float64(probes) / 32, // sequential: one miss per 8-tuple line per 4 probes
		BuildTuples:   probes / 4, BuildWidth: 8,
	}
	part := JoinProbeStats{
		Name: "part", Selectivity: 0.5, Probes: probes,
		SampledMisses: float64(probes) * 0.9, // random: nearly one miss per probe
		BuildTuples:   probes / 30, BuildWidth: 8,
	}
	dec, err := RecommendJoinOrder(g, []JoinProbeStats{part, orders})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Order[0] != 1 {
		t.Errorf("recommended order %v, want orders (index 1) first", dec.Order)
	}
	if dec.Sortedness[1].Class != CoClustered {
		t.Errorf("orders classified %v, want co-clustered", dec.Sortedness[1].Class)
	}
	if dec.Sortedness[0].Class == CoClustered {
		t.Error("part misclassified as co-clustered")
	}
}

func TestRecommendJoinOrderValidation(t *testing.T) {
	g := cachemodel.MustGeometry(64, 16384)
	if _, err := RecommendJoinOrder(g, nil); err == nil {
		t.Error("empty join list accepted")
	}
	bad := []JoinProbeStats{{Name: "x", Probes: 0, BuildTuples: 10, BuildWidth: 8}}
	if _, err := RecommendJoinOrder(g, bad); err == nil {
		t.Error("zero probes accepted")
	}
	bad = []JoinProbeStats{{Name: "x", Probes: 10, Selectivity: 2, BuildTuples: 10, BuildWidth: 8}}
	if _, err := RecommendJoinOrder(g, bad); err == nil {
		t.Error("selectivity > 1 accepted")
	}
}

func TestRecommendJoinOrderSelectivityTiebreak(t *testing.T) {
	// Equal miss rates: the more selective join goes first (rank ordering).
	g := cachemodel.MustGeometry(64, 16384)
	a := JoinProbeStats{Name: "a", Selectivity: 0.9, Probes: 1000, SampledMisses: 500, BuildTuples: 100000, BuildWidth: 8}
	b := JoinProbeStats{Name: "b", Selectivity: 0.2, Probes: 1000, SampledMisses: 500, BuildTuples: 100000, BuildWidth: 8}
	dec, err := RecommendJoinOrder(g, []JoinProbeStats{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Order[0] != 1 {
		t.Errorf("order %v, want selective join (index 1) first", dec.Order)
	}
}

func TestVerifyIdentity(t *testing.T) {
	d := progDataset(t, 10000)
	e := progEngine(t)
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIdentity(res.Counters, d.Lineitem.NumRows(), res.Qualifying); err != nil {
		t.Errorf("branch identity: %v", err)
	}
	if err := VerifyIdentity(res.Counters, d.Lineitem.NumRows(), res.Qualifying+1); err == nil {
		t.Error("corrupted qualifying accepted")
	}
}
