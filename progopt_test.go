package progopt

import (
	"math"
	"testing"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{VectorSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewDefaults(t *testing.T) {
	if _, err := New(Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	for _, a := range []Arch{ArchNehalem, ArchSandyBridge, ArchIvyBridge, ArchBroadwell, ArchAMD} {
		if _, err := New(Config{Arch: a}); err != nil {
			t.Errorf("arch %q rejected: %v", a, err)
		}
	}
	if _, err := New(Config{Arch: "pentium"}); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestGenerateTPCHOrderings(t *testing.T) {
	e := testEngine(t)
	for _, o := range []Ordering{OrderNatural, OrderSorted, OrderClustered, OrderRandom, ""} {
		d, err := e.GenerateTPCH(5000, 1, o)
		if err != nil {
			t.Fatalf("ordering %q: %v", o, err)
		}
		if d.Lineitems() != 5000 {
			t.Errorf("ordering %q: %d rows", o, d.Lineitems())
		}
	}
	if _, err := e.GenerateTPCH(5000, 1, "spiral"); err == nil {
		t.Error("unknown ordering accepted")
	}
	if _, err := e.GenerateTPCH(0, 1, OrderNatural); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestQ6EndToEnd(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(30000, 3, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildQ6(d)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumOps() != 5 || len(q.OpNames()) != 5 {
		t.Fatalf("Q6 has %d ops", q.NumOps())
	}
	base, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if base.Qualifying == 0 || base.Millis <= 0 {
		t.Fatalf("degenerate result %+v", base)
	}
	if base.Counters["br_not_taken"] == 0 || base.Counters["l3_access"] == 0 {
		t.Error("counters missing")
	}

	prog, st, err := e.RunProgressive(q, Progressive{Interval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Qualifying != base.Qualifying {
		t.Errorf("progressive changed results: %d vs %d", prog.Qualifying, base.Qualifying)
	}
	if math.Abs(prog.Sum-base.Sum) > math.Abs(base.Sum)*1e-9 {
		t.Error("progressive changed aggregate")
	}
	if st.Optimizations == 0 {
		t.Error("no optimizations ran")
	}
	if len(st.FinalOrder) != 5 {
		t.Errorf("final order %v", st.FinalOrder)
	}
}

func TestBuildQ6ShipdateAndWithOrder(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 4, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildQ6Shipdate(d, d.ShipdateCutoff(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumOps() != 4 {
		t.Fatalf("modified Q6 has %d ops", q.NumOps())
	}
	r1, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := q.WithOrder([]int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Qualifying != r2.Qualifying {
		t.Error("result depends on order")
	}
	if _, err := q.WithOrder([]int{0, 0, 1, 2}); err == nil {
		t.Error("invalid permutation accepted")
	}
}

func TestBuildScan(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 5, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildScan(d, []Predicate{
		{Column: "l_quantity", Op: CmpLT, Int: 10},
		{Column: "l_discount", Op: CmpGE, Float: 0.05},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	// Selectivity sanity: quantity<10 is ~18%, discount>=0.05 ~55%.
	frac := float64(res.Qualifying) / float64(d.Lineitems())
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("conjunctive selectivity %v implausible", frac)
	}
	if res.Sum <= 0 {
		t.Error("aggregate empty")
	}

	if _, err := e.BuildScan(d, nil, false); err == nil {
		t.Error("empty predicate list accepted")
	}
	if _, err := e.BuildScan(d, []Predicate{{Column: "nope", Op: CmpLT}}, false); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := e.BuildScan(d, []Predicate{{Table: "galaxy", Column: "x", Op: CmpLT}}, false); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.BuildScan(d, []Predicate{{Column: "l_quantity", Op: "!="}}, false); err == nil {
		t.Error("unknown comparison accepted")
	}
}

func TestEstimateSelectivities(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 6, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildScan(d, []Predicate{
		{Column: "l_quantity", Op: CmpLT, Int: 25}, // ~48%
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := e.EstimateSelectivities(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 {
		t.Fatalf("got %d estimates", len(sels))
	}
	if sels[0] < 0.38 || sels[0] > 0.58 {
		t.Errorf("estimated selectivity %v, want ~0.48", sels[0])
	}
}

func TestRunMicroAdaptiveFacade(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(30000, 9, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-selectivity predicates: the adaptive driver should use the
	// branch-free implementation for most vectors.
	q, err := e.BuildScan(d, []Predicate{
		{Column: "l_quantity", Op: CmpLE, Int: 25},
		{Column: "l_discount", Op: CmpLE, Float: 0.05},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := e.RunMicroAdaptive(q, Progressive{Interval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifying != base.Qualifying {
		t.Errorf("micro-adaptive changed results: %d vs %d", res.Qualifying, base.Qualifying)
	}
	if st.BranchFreeVectors == 0 {
		t.Error("never used the branch-free scan on mid-selectivity predicates")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 24 { // 14 paper figures + 10 extensions
		t.Fatalf("%d experiment ids", len(ids))
	}
	tables, err := RunExperiment("fig07", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].Text == "" || tables[0].CSV == "" {
		t.Error("fig07 rendering empty")
	}
	if _, err := RunExperiment("fig99", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWorkersFacade(t *testing.T) {
	run := func(cfg Config) (Result, Result, Stats) {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(30000, 3, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		q, err := e.BuildQ6(d)
		if err != nil {
			t.Fatal(err)
		}
		base, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		prog, st, err := e.RunProgressive(q, Progressive{Interval: 5})
		if err != nil {
			t.Fatal(err)
		}
		return base, prog, st
	}
	serialBase, serialProg, _ := run(Config{VectorSize: 1024})
	parBase, parProg, st := run(Config{VectorSize: 1024, Workers: 4})
	if parBase.Qualifying != serialBase.Qualifying || parBase.Sum != serialBase.Sum {
		t.Errorf("parallel base result %d/%v, serial %d/%v",
			parBase.Qualifying, parBase.Sum, serialBase.Qualifying, serialBase.Sum)
	}
	if parProg.Qualifying != serialProg.Qualifying || parProg.Sum != serialProg.Sum {
		t.Errorf("parallel progressive result %d/%v, serial %d/%v",
			parProg.Qualifying, parProg.Sum, serialProg.Qualifying, serialProg.Sum)
	}
	if parBase.Cycles >= serialBase.Cycles {
		t.Errorf("4-core makespan %d not below serial %d", parBase.Cycles, serialBase.Cycles)
	}
	if st.Optimizations == 0 {
		t.Error("parallel progressive never optimized")
	}

	scalarBase, _, _ := run(Config{VectorSize: 1024, ScalarExec: true})
	if scalarBase.Qualifying != serialBase.Qualifying || scalarBase.Sum != serialBase.Sum {
		t.Errorf("scalar mode result %d/%v, batch %d/%v",
			scalarBase.Qualifying, scalarBase.Sum, serialBase.Qualifying, serialBase.Sum)
	}
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 2 {
		t.Errorf("Workers() = %d", e.Workers())
	}
}
