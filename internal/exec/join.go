package exec

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// FKJoin probes a build-side table through a foreign-key column and filters
// on a build-side predicate. Because the key is a dense foreign key, every
// probe matches exactly one build row; the operator's selectivity is the
// build-side filter's selectivity.
//
// The probe models a hash join whose table is keyed by the dense FK: the
// bucket index is derived directly from the key, so probe locality mirrors
// key locality — co-clustered probes (lineitem→orders on a bulk-loaded
// table) walk the bucket array and the filter column nearly sequentially,
// while random keys (lineitem→part) hit random lines. This is exactly the
// locality contrast of the paper's §5.5/§5.6 experiments.
type FKJoin struct {
	// Key is the probe-side foreign-key column (values are build row ids).
	Key *columnar.Column
	// Filter is the build-side predicate applied to the matched row; nil
	// means the join only pays lookup cost and always passes.
	Filter *Predicate
	// ExtraCostInstr adds per-probe computation (hashing etc.).
	ExtraCostInstr int
	// Label overrides the generated name.
	Label string

	hashBase  uint64
	bucketLen uint64
	buildRows int64
}

// bucketBytes is the modelled size of one hash bucket (key + row pointer).
const bucketBytes = 16

// NewFKJoin builds the join and reserves the hash-table region in the
// simulated address space. buildRows is the build-side cardinality; all key
// values must lie in [0, buildRows).
func NewFKJoin(alloc columnar.Allocator, key *columnar.Column, buildRows int, filter *Predicate, label string) (*FKJoin, error) {
	if key == nil {
		return nil, fmt.Errorf("exec: fk join needs a key column")
	}
	if buildRows <= 0 {
		return nil, fmt.Errorf("exec: non-positive build cardinality %d", buildRows)
	}
	if filter != nil && filter.Col.Len() < buildRows {
		return nil, fmt.Errorf("exec: filter column %q has %d rows, build side has %d",
			filter.Col.Name(), filter.Col.Len(), buildRows)
	}
	// Bucket array sized to the next power of two.
	buckets := uint64(1)
	for buckets < uint64(buildRows) {
		buckets <<= 1
	}
	base, err := alloc.Alloc(int(buckets) * bucketBytes)
	if err != nil {
		return nil, fmt.Errorf("exec: allocating hash table: %w", err)
	}
	return &FKJoin{
		Key:       key,
		Filter:    filter,
		Label:     label,
		hashBase:  base,
		bucketLen: buckets,
		buildRows: int64(buildRows),
	}, nil
}

// Name implements Op.
func (j *FKJoin) Name() string {
	if j.Label != "" {
		return j.Label
	}
	if j.Filter != nil {
		return fmt.Sprintf("join[%s, %s]", j.Key.Name(), j.Filter.Name())
	}
	return fmt.Sprintf("join[%s]", j.Key.Name())
}

// Width implements Op.
func (j *FKJoin) Width() int { return j.Key.Width() }

// Eval implements Op: load the key, probe the bucket, touch the build row's
// filter column, and evaluate the filter.
func (j *FKJoin) Eval(c *cpu.CPU, row int) bool {
	c.Load(j.Key.Addr(row))
	key := j.Key.Int64At(row)
	if key < 0 || key >= j.buildRows {
		panic(keyRangeError(key, j.buildRows))
	}
	// Dense-key hash: bucket = key. Locality of probes mirrors key order.
	bucket := uint64(key) & (j.bucketLen - 1)
	c.Load(j.hashBase + bucket*bucketBytes)
	c.Exec(2 + j.ExtraCostInstr) // hash + index arithmetic
	if j.Filter == nil {
		return true
	}
	return j.Filter.Eval(c, int(key))
}

// EvalBatch implements Op: one key load, one bucket probe, and (with a
// filter) one build-side load and comparison per selected row, with the
// per-probe arithmetic charged once for the whole vector. Loads, retired
// instructions, and per-site branch outcomes match Eval exactly.
//
// The data-dependent address stream — bucket probe, then build-side filter
// value, per selected row, in row order — is gathered into the CPU's scratch
// and simulated by one LoadAddrs run, so co-clustered probes collapse into
// counted same-line touches instead of per-row full lookups. Hoisting the
// loads ahead of the branch phase is count-exact: loads touch no predictor
// state and branches touch no cache state.
func (j *FKJoin) EvalBatch(c *cpu.CPU, site int, sel, out []int32) []int32 {
	keyBase := j.Key.Base()
	kw := uint64(j.Key.Width())
	c.Exec((2 + j.ExtraCostInstr) * len(sel)) // hash + index arithmetic
	if j.Filter != nil && j.Filter.ExtraCostInstr > 0 {
		c.Exec(j.Filter.ExtraCostInstr * len(sel))
	}
	ki64, ki32 := j.Key.I64(), j.Key.I32()
	key := func(r int32) int64 {
		var k int64
		switch {
		case ki64 != nil:
			k = ki64[r]
		case ki32 != nil:
			k = int64(ki32[r])
		default:
			k = j.Key.Int64At(int(r)) // panics for non-integer keys, like Eval
		}
		if k < 0 || k >= j.buildRows {
			panic(keyRangeError(k, j.buildRows))
		}
		return k
	}
	// Key-column gather, run-batched.
	selLoads(c, sel, keyBase, kw)
	if j.Filter == nil {
		// Probe stream only; the join branch never fails and retires as one
		// constant-outcome batch.
		addrs := c.AddrBuf(len(sel))
		for _, r := range sel {
			bucket := uint64(key(r)) & (j.bucketLen - 1)
			addrs = append(addrs, j.hashBase+bucket*bucketBytes)
		}
		c.LoadAddrs(addrs)
		c.CondBranchN(site, false, len(sel))
		return append(out, sel...)
	}
	fBase := j.Filter.Col.Base()
	fw := uint64(j.Filter.Col.Width())
	// Interleaved probe/filter address stream, in the exact per-row order
	// Eval performs it; the decoded keys ride along for the branch phase so
	// the kind dispatch and range check run once per row.
	addrs := c.AddrBuf(2 * len(sel))
	keys := c.KeyBuf(len(sel))
	for _, r := range sel {
		k := key(r)
		bucket := uint64(k) & (j.bucketLen - 1)
		addrs = append(addrs, j.hashBase+bucket*bucketBytes, fBase+uint64(k)*fw)
		keys = append(keys, k)
	}
	c.LoadAddrs(addrs)
	for i, r := range sel {
		ok := j.Filter.passRaw(int(keys[i]))
		c.CondBranch(site, !ok)
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// keyRangeError formats the out-of-range FK panic shared by every probe
// path (scalar, batched, fused).
func keyRangeError(key, buildRows int64) string {
	return fmt.Sprintf("exec: fk key %d outside build side [0,%d)", key, buildRows)
}

// JoinSelectivity scans the build-side filter directly (no simulation) and
// returns the probability a probe survives; 1 if the join has no filter.
func (j *FKJoin) JoinSelectivity() float64 {
	if j.Filter == nil {
		return 1
	}
	return j.Filter.TrueSelectivity()
}
