package tpch

import (
	"math"
	"sort"
	"testing"
	"time"

	"progopt/internal/columnar"
)

func smallSet(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(Config{Lineitems: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Lineitems: 0}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Generate(Config{Lineitems: -5}); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	d := smallSet(t)
	if d.Lineitem.NumRows() != 20000 {
		t.Errorf("lineitem rows = %d", d.Lineitem.NumRows())
	}
	if d.Orders.NumRows() != d.NumOrders || d.Part.NumRows() != d.NumParts {
		t.Error("build tables disagree with counts")
	}
	// dbgen ratios: ~4 lineitems per order, parts ~8x fewer than orders.
	ratio := float64(d.Lineitem.NumRows()) / float64(d.NumOrders)
	if ratio < 3 || ratio > 5 {
		t.Errorf("lineitems per order = %v, want ~4", ratio)
	}
	pr := float64(d.NumOrders) / float64(d.NumParts)
	if pr < 5 || pr > 10 {
		t.Errorf("orders/parts = %v, want ~7.5", pr)
	}
	for _, name := range []string{"l_orderkey", "l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate"} {
		if d.Lineitem.Column(name) == nil {
			t.Errorf("missing lineitem column %q", name)
		}
	}
}

func TestGenerateDomains(t *testing.T) {
	d := smallSet(t)
	for i, q := range d.Lineitem.Column("l_quantity").I64() {
		if q < 1 || q > 50 {
			t.Fatalf("row %d: quantity %d outside [1,50]", i, q)
		}
	}
	for i, disc := range d.Lineitem.Column("l_discount").F64() {
		if disc < 0 || disc > 0.10+1e-9 {
			t.Fatalf("row %d: discount %v outside [0,0.10]", i, disc)
		}
	}
	for i, s := range d.Lineitem.Column("l_shipdate").I32() {
		if s < StartDate || s > EndShipDate {
			t.Fatalf("row %d: shipdate %d outside domain", i, s)
		}
	}
	numOrders := int64(d.NumOrders)
	for i, k := range d.Lineitem.Column("l_orderkey").I64() {
		if k < 0 || k >= numOrders {
			t.Fatalf("row %d: orderkey %d outside [0,%d)", i, k, numOrders)
		}
	}
	numParts := int64(d.NumParts)
	for i, k := range d.Lineitem.Column("l_partkey").I64() {
		if k < 0 || k >= numParts {
			t.Fatalf("row %d: partkey %d outside [0,%d)", i, k, numParts)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Lineitems: 5000, Seed: 7})
	b := MustGenerate(Config{Lineitems: 5000, Seed: 7})
	sa := a.Lineitem.Column("l_shipdate").I32()
	sb := b.Lineitem.Column("l_shipdate").I32()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := MustGenerate(Config{Lineitems: 5000, Seed: 8})
	sc := c.Lineitem.Column("l_shipdate").I32()
	diff := 0
	for i := range sa {
		if sa[i] != sc[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical data")
	}
}

func TestNaturalOrderIsCoClustered(t *testing.T) {
	d := smallSet(t)
	keys := d.Lineitem.Column("l_orderkey").I64()
	if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
		t.Error("natural order must have ascending orderkeys (co-clustered with orders)")
	}
}

func TestNaturalOrderIsWeaklyClusteredOnShipdate(t *testing.T) {
	// Bulk load: shipdate is not sorted but strongly correlated with row
	// position. Spearman-ish check: correlation of rank vs position > 0.9.
	d := smallSet(t)
	ship := d.Lineitem.Column("l_shipdate").I32()
	n := len(ship)
	var sx, sy, sxx, syy, sxy float64
	for i, s := range ship {
		x, y := float64(i), float64(s)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	nf := float64(n)
	corr := (nf*sxy - sx*sy) / math.Sqrt((nf*sxx-sx*sx)*(nf*syy-sy*sy))
	if corr < 0.9 {
		t.Errorf("shipdate/position correlation %v, want > 0.9 (weak clustering)", corr)
	}
	sorted := sort.SliceIsSorted(ship, func(a, b int) bool { return ship[a] < ship[b] })
	if sorted {
		t.Error("natural order should be weakly clustered, not fully sorted")
	}
}

func TestReorderings(t *testing.T) {
	d := smallSet(t)

	s := d.ReorderLineitem(OrderingShipdateSorted, 2)
	ship := s.Lineitem.Column("l_shipdate").I32()
	if !sort.SliceIsSorted(ship, func(a, b int) bool { return ship[a] < ship[b] }) {
		t.Error("sorted ordering not sorted")
	}

	c := d.ReorderLineitem(OrderingClusteredMonth, 2)
	cs := c.Lineitem.Column("l_shipdate").I32()
	// Months must be non-decreasing even though days within are shuffled.
	for i := 1; i < len(cs); i++ {
		if MonthID(cs[i]) < MonthID(cs[i-1]) {
			t.Fatalf("clustered ordering: month decreased at row %d", i)
		}
	}
	if sort.SliceIsSorted(cs, func(a, b int) bool { return cs[a] < cs[b] }) {
		t.Error("clustered ordering is fully sorted; shuffle had no effect")
	}

	r := d.ReorderLineitem(OrderingRandom, 2)
	rs := r.Lineitem.Column("l_shipdate").I32()
	if sort.SliceIsSorted(rs, func(a, b int) bool { return rs[a] < rs[b] }) {
		t.Error("random ordering came out sorted")
	}

	// All reorderings preserve the multiset of rows: compare quantity sums.
	sum := func(tb *columnar.Table) int64 {
		var s int64
		for _, v := range tb.Column("l_quantity").I64() {
			s += v
		}
		return s
	}
	want := sum(d.Lineitem)
	for _, ds := range []*Dataset{s, c, r} {
		if got := sum(ds.Lineitem); got != want {
			t.Errorf("reordering changed data: quantity sum %d != %d", got, want)
		}
	}
}

func TestReorderingKeepsRowAlignment(t *testing.T) {
	// Rows must be permuted as units: (quantity, shipdate) pairs survive.
	d := MustGenerate(Config{Lineitems: 3000, Seed: 3})
	type pair struct {
		q int64
		s int32
	}
	count := map[pair]int{}
	q := d.Lineitem.Column("l_quantity").I64()
	sd := d.Lineitem.Column("l_shipdate").I32()
	for i := range q {
		count[pair{q[i], sd[i]}]++
	}
	r := d.ReorderLineitem(OrderingRandom, 9)
	rq := r.Lineitem.Column("l_quantity").I64()
	rs := r.Lineitem.Column("l_shipdate").I32()
	for i := range rq {
		count[pair{rq[i], rs[i]}]--
	}
	for p, c := range count {
		if c != 0 {
			t.Fatalf("pair %v count off by %d after permutation", p, c)
		}
	}
}

func TestWindowReordering(t *testing.T) {
	d := smallSet(t)
	w1 := d.ReorderLineitemWindow(1, 4)
	ship := w1.Lineitem.Column("l_shipdate").I32()
	if !sort.SliceIsSorted(ship, func(a, b int) bool { return ship[a] < ship[b] }) {
		t.Error("window=1 must be fully sorted")
	}
	inv := func(ds *Dataset) int {
		s := ds.Lineitem.Column("l_shipdate").I32()
		c := 0
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				c++
			}
		}
		return c
	}
	small := inv(d.ReorderLineitemWindow(16, 4))
	large := inv(d.ReorderLineitemWindow(20000, 4))
	if small == 0 || large <= small {
		t.Errorf("window shuffle inversions: 16->%d, 20000->%d; want 0 < small < large", small, large)
	}
}

func TestShipdateCutoffSelectivity(t *testing.T) {
	d := smallSet(t)
	ship := d.Lineitem.Column("l_shipdate").I32()
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		cut := d.ShipdateCutoff(sel)
		match := 0
		for _, s := range ship {
			if s <= cut {
				match++
			}
		}
		got := float64(match) / float64(len(ship))
		if math.Abs(got-sel) > 0.02+sel*0.2 {
			t.Errorf("cutoff for sel=%v yields %v", sel, got)
		}
	}
	if d.ShipdateCutoff(0) >= StartDate {
		t.Error("sel=0 cutoff must precede all ship dates")
	}
	if d.ShipdateCutoff(1) < EndShipDate {
		t.Error("sel=1 cutoff must cover all ship dates")
	}
}

func TestDateHelpers(t *testing.T) {
	if DaysSinceEpoch(1970, time.January, 1) != 0 {
		t.Error("epoch day not zero")
	}
	if DaysSinceEpoch(1970, time.January, 2) != 1 {
		t.Error("day arithmetic wrong")
	}
	if StartDate != DaysSinceEpoch(1992, time.January, 1) {
		t.Error("StartDate mismatch")
	}
	// MonthID monotone over a year boundary.
	dec := MonthID(DaysSinceEpoch(1992, time.December, 31))
	jan := MonthID(DaysSinceEpoch(1993, time.January, 1))
	if jan != dec+1 {
		t.Errorf("MonthID Dec92=%d Jan93=%d, want consecutive", dec, jan)
	}
	if Q6ShipdateLo() >= Q6ShipdateHi() {
		t.Error("Q6 shipdate bounds inverted")
	}
}

func TestQuantileInt32(t *testing.T) {
	c := columnar.NewInt32("x", []int32{5, 1, 9, 3, 7})
	if q := QuantileInt32(c, 0); q != 1 {
		t.Errorf("q0 = %d, want 1", q)
	}
	if q := QuantileInt32(c, 0.99); q != 9 {
		t.Errorf("q0.99 = %d, want 9", q)
	}
	if q := QuantileInt32(c, 0.5); q != 5 {
		t.Errorf("q0.5 = %d, want 5", q)
	}
	empty := columnar.NewInt32("e", nil)
	if q := QuantileInt32(empty, 0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}
