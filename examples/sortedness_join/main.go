// Sortedness and join order (§5.5-§5.6): an expensive selection combined
// with a foreign-key join should run join-first while the data is sorted
// (build-side accesses are nearly sequential) and selection-first once
// shuffling destroys that locality. Only cache-miss counters — not tuple
// counts — reveal which side of the break-even point the data is on.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{VectorSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.GenerateTPCH(100_000, 9, progopt.OrderNatural)
	if err != nil {
		log.Fatal(err)
	}

	windows := []struct {
		label string
		w     int
	}{
		{"sorted (1T)", 1},
		{"cache line", 8},
		{"L1-sized", 256},
		{"L2-sized", 2048},
		{"random (Mem)", 100_000},
	}

	fmt.Println("sortedness     sel_first_ms  join_first_ms  winner       join locality")
	fmt.Println("---------------------------------------------------------------------")
	for _, win := range windows {
		ds := base.ShuffleWindow(win.w, int64(win.w))
		// One expensive predicate (FilterCost models a string match / UDF)
		// followed by an FK join into orders with a 50%-selective build
		// filter — declared as one plan, reordered freely by WithOrder.
		q, err := eng.Compile(ds, progopt.Scan("lineitem").
			FilterCost("l_quantity", progopt.CmpLE, 25, 40).
			Join("orders", 0.5))
		if err != nil {
			log.Fatal(err)
		}
		selFirst, err := eng.Exec(q, progopt.ExecOptions{Mode: progopt.ModeFixed})
		if err != nil {
			log.Fatal(err)
		}
		joinQ, err := q.WithOrder([]int{1, 0})
		if err != nil {
			log.Fatal(err)
		}
		joinFirst, rep, err := eng.DetectJoinLocality(joinQ, ds, "orders")
		if err != nil {
			log.Fatal(err)
		}
		winner := "selection"
		if joinFirst.Millis < selFirst.Millis {
			winner = "join"
		}
		fmt.Printf("%-13s  %10.2f   %10.2f    %-10s  %s (ratio %.2f)\n",
			win.label, selFirst.Millis, joinFirst.Millis, winner, rep.Class, rep.Ratio)
	}
}
