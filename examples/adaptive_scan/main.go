// Adaptive scan: the paper's headline experiment in miniature. Execute Q6
// under every one of a set of initial predicate orders, with and without
// progressive optimization, on sorted data whose optimal order changes
// mid-scan (§5.4). Progressive optimization flattens the runtime across
// initial orders — robustness is the point, not just peak speed.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{VectorSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := eng.GenerateTPCH(120_000, 7, progopt.OrderSorted)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.BuildQ6(ds)
	if err != nil {
		log.Fatal(err)
	}

	orders := [][]int{
		{0, 1, 2, 3, 4}, // written order
		{4, 3, 2, 1, 0}, // reversed
		{2, 3, 0, 1, 4}, // discount first
		{1, 0, 4, 3, 2}, // shipdate upper bound first
		{3, 4, 1, 2, 0}, // mixed
	}

	fmt.Println("initial order     baseline_ms  progressive_ms  speedup")
	fmt.Println("--------------------------------------------------------")
	var worstBase, worstProg float64
	for _, perm := range orders {
		qo, err := q.WithOrder(perm)
		if err != nil {
			log.Fatal(err)
		}
		base, err := eng.Run(qo)
		if err != nil {
			log.Fatal(err)
		}
		prog, _, err := eng.RunProgressive(qo, progopt.Progressive{Interval: 10})
		if err != nil {
			log.Fatal(err)
		}
		if base.Millis > worstBase {
			worstBase = base.Millis
		}
		if prog.Millis > worstProg {
			worstProg = prog.Millis
		}
		fmt.Printf("%v   %8.2f     %8.2f       %.2fx\n", perm, base.Millis, prog.Millis, base.Millis/prog.Millis)
	}
	fmt.Printf("\nworst-case runtime: baseline %.2f ms vs progressive %.2f ms (%.2fx more robust)\n",
		worstBase, worstProg, worstBase/worstProg)
}
