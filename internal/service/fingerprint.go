// Package service is the multi-query workload layer on top of the
// single-query engine: a deterministic discrete-event scheduler that runs
// many concurrent queries against one shared pool of simulated cores, plus
// the plan-fingerprint and PMU-feedback caches that amortize compilation and
// progressive-optimization cost across recurring submissions.
//
// Everything runs on the simulated clock. Submissions carry simulated
// arrival times; the scheduler partitions the pool's cores across active
// queries at morsel granularity (exec.Parallel.RunBlockSubset) and advances
// per-core absolute clocks, so a fixed workload trace produces bit-identical
// per-query results, PMU counters, latencies, and total makespan on every
// host run, for every GOMAXPROCS setting — there is no host-time anywhere in
// the scheduling loop.
package service

import (
	"encoding/hex"
	"hash/fnv"
	"sort"
)

// Fingerprint canonically identifies a compiled plan over a concrete data
// set: the driving table, the multiset of operator terms (order-independent
// — the optimizer permutes operators anyway, so two plans that chain the
// same steps differently are the same query), the aggregate/grouping spec,
// and the data-set generation counter (so a regenerated data set invalidates
// every plan compiled against its predecessor). It keys both the plan cache
// and the feedback cache.
type Fingerprint [16]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Zero reports whether the fingerprint is unset.
func (f Fingerprint) Zero() bool { return f == Fingerprint{} }

// Compute hashes the canonical plan identity. terms are the per-step
// encodings produced by the plan layer (filters, joins, aggregates); they
// are sorted here, making the fingerprint independent of construction
// order. generation is the data-set generation counter.
func Compute(table string, generation uint64, terms []string) Fingerprint {
	sorted := append([]string(nil), terms...)
	sort.Strings(sorted)
	h := fnv.New128a()
	writeTerm(h, "t|"+table)
	var gen [8]byte
	for i := 0; i < 8; i++ {
		gen[i] = byte(generation >> (8 * i))
	}
	h.Write(gen[:])
	for _, t := range sorted {
		writeTerm(h, t)
	}
	var f Fingerprint
	copy(f[:], h.Sum(nil))
	return f
}

// writeTerm writes one length-prefixed term, so term boundaries cannot alias
// ("ab"+"c" never hashes like "a"+"bc").
func writeTerm(h interface{ Write([]byte) (int, error) }, term string) {
	n := len(term)
	h.Write([]byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)})
	h.Write([]byte(term))
}
