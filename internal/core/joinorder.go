package core

import (
	"fmt"
	"sort"

	cachemodel "progopt/internal/costmodel/cache"
)

// JoinProbeStats summarizes one join operator's sampled behaviour, the input
// to the §5.6 join-order rule.
type JoinProbeStats struct {
	// Name labels the join in reports.
	Name string
	// Selectivity is the fraction of probes surviving the join's filter.
	Selectivity float64
	// Probes is the number of probe accesses in the sample.
	Probes int
	// SampledMisses is the L3 miss count attributed to the join's probes.
	SampledMisses float64
	// BuildTuples and BuildWidth describe the build side for Eq. (1).
	BuildTuples int
	BuildWidth  int
}

// JoinOrderDecision is the outcome of RecommendJoinOrder.
type JoinOrderDecision struct {
	// Order holds the recommended evaluation order (indexes into the input).
	Order []int
	// Costs are the per-probe cost estimates used for ranking.
	Costs []float64
	// Sortedness is the per-join classification.
	Sortedness []SortednessReport
}

// missStallWeight converts one miss into comparable cost units (roughly the
// memory-stall cycles of the simulated core) and evalCost is the bookkeeping
// cost of one probe.
const (
	missStallWeight = 45.0
	evalCost        = 4.0
)

// RecommendJoinOrder ranks joins with the classic rank-ordering criterion,
// rank = cost / (1 - selectivity) ascending, where each join's per-probe
// cost comes from the sampled miss rate rather than table sizes — the
// paper's point in §5.6: lineitem⋈part looks cheaper than lineitem⋈orders by
// size, but the sampled misses reveal orders is co-clustered and must go
// first.
func RecommendJoinOrder(g cachemodel.Geometry, joins []JoinProbeStats) (JoinOrderDecision, error) {
	if len(joins) == 0 {
		return JoinOrderDecision{}, fmt.Errorf("core: no joins to order")
	}
	d := JoinOrderDecision{
		Order:      make([]int, len(joins)),
		Costs:      make([]float64, len(joins)),
		Sortedness: make([]SortednessReport, len(joins)),
	}
	ranks := make([]float64, len(joins))
	for i, j := range joins {
		if j.Probes <= 0 {
			return JoinOrderDecision{}, fmt.Errorf("core: join %q has no probes", j.Name)
		}
		if j.Selectivity < 0 || j.Selectivity > 1 {
			return JoinOrderDecision{}, fmt.Errorf("core: join %q selectivity %v outside [0,1]", j.Name, j.Selectivity)
		}
		d.Sortedness[i] = DetectSortedness(g, j.BuildTuples, j.BuildWidth, j.Probes, j.SampledMisses)
		missRate := j.SampledMisses / float64(j.Probes)
		cost := evalCost + missRate*missStallWeight
		d.Costs[i] = cost
		// Rank ordering: cost/(1-sel); a join that filters nothing (sel 1)
		// has infinite rank and goes last among equal costs.
		drop := 1 - j.Selectivity
		if drop <= 1e-9 {
			ranks[i] = cost * 1e9
		} else {
			ranks[i] = cost / drop
		}
		d.Order[i] = i
	}
	sort.SliceStable(d.Order, func(a, b int) bool { return ranks[d.Order[a]] < ranks[d.Order[b]] })
	return d, nil
}
