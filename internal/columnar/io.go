package columnar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary table format:
//
//	magic "PCOL" | version u32 | nameLen u32 | name | numCols u32
//	per column: nameLen u32 | name | kind u32 | rows u64 | payload (LE)
//
// The format exists so generated data sets (cmd/tpchgen) can be produced once
// and reloaded by benchmarks and examples.

const (
	formatMagic   = "PCOL"
	formatVersion = 1
	// maxStringLen bounds on-disk string lengths to keep corrupt files from
	// driving huge allocations.
	maxStringLen = 1 << 16
	// maxRows bounds per-column row counts on load (1B rows).
	maxRows = 1 << 30
)

// WriteTable serializes t to w in the binary column format.
func WriteTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(formatVersion)); err != nil {
		return err
	}
	if err := writeString(bw, t.Name()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(t.NumCols())); err != nil {
		return err
	}
	for _, c := range t.Columns() {
		if err := writeColumn(bw, c); err != nil {
			return fmt.Errorf("columnar: writing column %q: %w", c.Name(), err)
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("columnar: string of %d bytes exceeds format limit", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeColumn(w io.Writer, c *Column) error {
	if err := writeString(w, c.Name()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(c.Kind())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(c.Len())); err != nil {
		return err
	}
	var buf [8]byte
	switch c.Kind() {
	case Int64:
		for _, v := range c.I64() {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	case Float64:
		for _, v := range c.F64() {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	case Int32, Date:
		for _, v := range c.I32() {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("columnar: unsupported kind %v", c.Kind())
	}
	return nil
}

// ReadTable parses a table from r. It accepts both format versions (it is
// LoadTable under the original name).
func ReadTable(r io.Reader) (*Table, error) {
	return LoadTable(r)
}

// readV1Body parses the v1 stream after the magic/version header.
func readV1Body(br io.Reader) (*Table, error) {
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var numCols uint32
	if err := binary.Read(br, binary.LittleEndian, &numCols); err != nil {
		return nil, err
	}
	if numCols > 4096 {
		return nil, fmt.Errorf("columnar: implausible column count %d", numCols)
	}
	t := NewTable(name)
	for i := uint32(0); i < numCols; i++ {
		c, err := readColumn(br)
		if err != nil {
			return nil, fmt.Errorf("columnar: reading column %d: %w", i, err)
		}
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("columnar: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readColumn(r io.Reader) (*Column, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	var kind uint32
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	var rows uint64
	if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if rows > maxRows {
		return nil, fmt.Errorf("columnar: row count %d exceeds limit", rows)
	}
	n := int(rows)
	switch Kind(kind) {
	case Int64:
		data, err := readI64s(r, n)
		if err != nil {
			return nil, err
		}
		return NewInt64(name, data), nil
	case Float64:
		raw, err := readI64s(r, n)
		if err != nil {
			return nil, err
		}
		data := make([]float64, n)
		for i, v := range raw {
			data[i] = math.Float64frombits(uint64(v))
		}
		return NewFloat64(name, data), nil
	case Int32, Date:
		data, err := readI32s(r, n)
		if err != nil {
			return nil, err
		}
		if Kind(kind) == Date {
			return NewDate(name, data), nil
		}
		return NewInt32(name, data), nil
	default:
		return nil, fmt.Errorf("columnar: unknown kind %d", kind)
	}
}

// readChunkBytes values are decoded per ReadFull call by the chunked payload
// readers, so memory growth tracks bytes actually present in the stream — a
// corrupt header declaring a billion rows over a ten-byte payload fails
// after one small read instead of allocating the full declared size first.
const readChunkBytes = 64 << 10

// readI64s reads n little-endian 8-byte values, growing the result as the
// stream delivers them.
func readI64s(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, 0, minInt(n, readChunkBytes/8))
	buf := make([]byte, minInt(n*8, readChunkBytes))
	for len(out) < n {
		chunk := minInt(n-len(out), readChunkBytes/8)
		if _, err := io.ReadFull(r, buf[:chunk*8]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out, nil
}

// readI32s reads n little-endian 4-byte values, growing as delivered.
func readI32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, minInt(n, readChunkBytes/4))
	buf := make([]byte, minInt(n*4, readChunkBytes))
	for len(out) < n {
		chunk := minInt(n-len(out), readChunkBytes/4)
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return out, nil
}

// readBytes reads exactly n bytes, growing as delivered.
func readBytes(r io.Reader, n int) ([]byte, error) {
	out := make([]byte, 0, minInt(n, readChunkBytes))
	for len(out) < n {
		chunk := minInt(n-len(out), readChunkBytes)
		start := len(out)
		out = append(out, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
