package progopt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"progopt/internal/trace"
)

// The tracing acceptance criterion (pure observer): a run with Config.Trace
// set is bit-identical — results, cycles, optimizer stats, every PMU counter
// — to the same run untraced, across the Workers × fusion × exec-mode matrix
// and the served path; and identical configurations produce byte-identical
// trace files across runs and GOMAXPROCS.

// traceSetup builds a fresh engine over the determinism suite's data set and
// plan, optionally traced.
func traceSetup(t *testing.T, workers int, noFuse, traced bool) (*Engine, *Dataset, *Query) {
	t.Helper()
	cfg := Config{VectorSize: 1024, Workers: workers, NoFuse: noFuse}
	if traced {
		cfg.Trace = &TraceOptions{}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(24*1024, 37, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("l_discount", CmpLE, 0.05).
		Filter("l_quantity", CmpLT, 10).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		t.Fatal(err)
	}
	return e, d, q
}

// TestTracePureObserver pins traced == untraced over the full matrix.
func TestTracePureObserver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, noFuse := range []bool{false, true} {
			for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
				name := fmt.Sprintf("workers=%d/nofuse=%v/%s", workers, noFuse, mode)
				t.Run(name, func(t *testing.T) {
					opts := ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}}
					eRef, _, qRef := traceSetup(t, workers, noFuse, false)
					defer eRef.Close()
					want, err := eRef.Exec(qRef, opts)
					if err != nil {
						t.Fatal(err)
					}
					eTr, _, qTr := traceSetup(t, workers, noFuse, true)
					defer eTr.Close()
					got, err := eTr.Exec(qTr, opts)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, name, want.Result, got.Result)
					sameStats(t, name, want.Stats, got.Stats)
					if want.Impl != got.Impl {
						t.Errorf("impl stats diverge: %+v vs %+v", want.Impl, got.Impl)
					}
					if eTr.Trace().NumEvents() == 0 {
						t.Error("traced run recorded no events")
					}
				})
			}
		}
	}
}

// TestTracePureObserverServed extends the pure-observer contract to the
// workload server: serving under tracing changes no outcome, latency, or
// counter.
func TestTracePureObserverServed(t *testing.T) {
	run := func(traced bool) ExecResult {
		e, d, _ := traceSetup(t, 4, false, traced)
		defer e.Close()
		srv, err := NewServer(e, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		tk, err := srv.Submit(d, Scan("lineitem").
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
			Filter("l_discount", CmpLE, 0.05).
			Filter("l_quantity", CmpLT, 10).
			Sum("l_extendedprice * l_discount"),
			ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want, got := run(false), run(true)
	sameResult(t, "served", want.Result, got.Result)
	sameStats(t, "served", want.Stats, got.Stats)
	if want.Served.LatencyCycles != got.Served.LatencyCycles {
		t.Errorf("latency diverges: %d vs %d", want.Served.LatencyCycles, got.Served.LatencyCycles)
	}
}

// TestTracePureObserverStored pins the tier-event path: tracing a stored run
// (block fetches reported to the core tracks) changes nothing.
func TestTracePureObserverStored(t *testing.T) {
	stcfg := &StorageConfig{LatencyCycles: 500, BytesPerCycle: 16}
	run := func(traced bool) (ExecResult, *Engine) {
		cfg := Config{VectorSize: 1024, Workers: 4, Storage: stcfg}
		if traced {
			cfg.Trace = &TraceOptions{}
		}
		e, _, q := storedSetup(t, cfg, OrderNatural, storedQ6Plan())
		r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return r, e
	}
	want, eRef := run(false)
	defer eRef.Close()
	got, eTr := run(true)
	defer eTr.Close()
	sameResult(t, "stored", want.Result, got.Result)
	fetches := 0
	for _, tk := range eTr.tr.rec.Tracks() {
		for _, ev := range tk.Events() {
			if ev.Name == "tier-fetch" {
				fetches++
			}
		}
	}
	if fetches == 0 {
		t.Error("traced stored run recorded no tier-fetch events")
	}
	if uint64(fetches) != want.Storage.BlockFetches {
		t.Errorf("tier-fetch events %d != block fetches %d", fetches, want.Storage.BlockFetches)
	}
}

// traceBytes runs the reference progressive configuration traced and returns
// the exported Chrome JSON.
func traceBytes(t *testing.T) []byte {
	t.Helper()
	e, _, q := traceSetup(t, 4, false, true)
	defer e.Close()
	if _, err := e.Exec(q, ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdentity pins the export: identical configurations produce
// byte-identical trace files across runs and GOMAXPROCS.
func TestTraceByteIdentity(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	ref := traceBytes(t)
	runtime.GOMAXPROCS(prev)
	for _, gmp := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
			got := traceBytes(t)
			if !bytes.Equal(ref, got) {
				t.Errorf("trace files diverge: %d vs %d bytes", len(ref), len(got))
			}
		})
	}
	if !json.Valid(ref) {
		t.Error("exported trace is not valid JSON")
	}
}

// TestTraceChromeFormat checks the exported file is valid trace-event format:
// a traceEvents array whose entries carry name/ph/ts, with one named thread
// per simulated core plus the optimizer track.
func TestTraceChromeFormat(t *testing.T) {
	raw := traceBytes(t)
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event missing ph/name: %v", ev)
		}
		if ph == "M" {
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
			continue
		}
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event missing ts: %v", ev)
		}
	}
	for _, want := range []string{"core 0", "core 1", "core 2", "core 3", "optimizer"} {
		if !names[want] {
			t.Errorf("no thread_name metadata for track %q (have %v)", want, names)
		}
	}
}

// TestTraceReorderEvidence pins the acceptance criterion: a traced
// ModeProgressive run emits at least one reorder decision event carrying the
// PMU snapshot that justified it.
func TestTraceReorderEvidence(t *testing.T) {
	e, _, q := traceSetup(t, 1, false, true)
	defer e.Close()
	res, err := e.Exec(q, ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reorders == 0 {
		t.Fatal("progressive run on random order performed no reorders")
	}
	reorders := 0
	for _, ev := range e.tr.opt.Events() {
		if ev.Name != "reorder" {
			continue
		}
		reorders++
		keys := map[string]bool{}
		for _, a := range ev.Args {
			keys[a.Key] = true
		}
		for _, want := range []string{"from", "to", "br_not_taken", "br_mp_taken", "br_mp_not_taken", "l3_access"} {
			if !keys[want] {
				t.Errorf("reorder event lacks %q evidence: %v", want, ev.Args)
			}
		}
	}
	if reorders != res.Stats.Reorders {
		t.Errorf("reorder events %d != Stats.Reorders %d", reorders, res.Stats.Reorders)
	}
	// The sample series retained on Stats is the same evidence stream.
	if len(res.Stats.Samples) == 0 || len(res.Stats.Samples) != res.Stats.Optimizations {
		t.Fatalf("Samples len %d, want %d (one per optimization)", len(res.Stats.Samples), res.Stats.Optimizations)
	}
	var prev uint64
	for i, s := range res.Stats.Samples {
		if s.Cycles < prev {
			t.Fatalf("sample %d clock went backwards: %d < %d", i, s.Cycles, prev)
		}
		prev = s.Cycles
		if s.Counters["br_not_taken"] == 0 && s.Counters["l3_access"] == 0 {
			t.Errorf("sample %d carries no counter evidence", i)
		}
	}
}

// TestTraceExplainSummary checks Explain reports the per-query span summary
// of a traced execution.
func TestTraceExplainSummary(t *testing.T) {
	e, _, q := traceSetup(t, 1, false, true)
	defer e.Close()
	if _, err := e.Exec(q, ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}); err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Trace) == 0 {
		t.Fatal("Explain reports no trace summary after a traced Exec")
	}
	byName := map[string]TraceAgg{}
	for _, a := range ex.Trace {
		byName[a.Name] = a
	}
	if v, ok := byName["vector"]; !ok || v.Count == 0 || v.Cycles == 0 {
		t.Errorf("trace summary lacks vector spans: %+v", ex.Trace)
	}
	if _, ok := byName["sample"]; !ok {
		t.Errorf("trace summary lacks sampling events: %+v", ex.Trace)
	}
	if !strings.Contains(ex.String(), "trace:") {
		t.Errorf("Explain string lacks trace section:\n%s", ex.String())
	}
}

// TestTraceReset pins the per-experiment lifecycle: Reset clears events but
// keeps tracks, and the next run exports cleanly.
func TestTraceReset(t *testing.T) {
	e, _, q := traceSetup(t, 4, false, true)
	defer e.Close()
	if _, err := e.Exec(q, ExecOptions{Mode: ModeFixed}); err != nil {
		t.Fatal(err)
	}
	if e.Trace().NumEvents() == 0 {
		t.Fatal("no events before reset")
	}
	e.Trace().Reset()
	if n := e.Trace().NumEvents(); n != 0 {
		t.Fatalf("%d events survived reset", n)
	}
	if _, err := e.Exec(q, ExecOptions{Mode: ModeFixed}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("post-reset export is not valid JSON")
	}
}

// TestServerMetricsExposition checks the Prometheus text exposition: the
// expected instruments, exact counts, and latency quantiles.
func TestServerMetricsExposition(t *testing.T) {
	e, d, _ := traceSetup(t, 4, false, false)
	defer e.Close()
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	plan := func() *Plan {
		return Scan("lineitem").
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
			Filter("l_discount", CmpLE, 0.05).
			Filter("l_quantity", CmpLT, 10).
			Sum("l_extendedprice * l_discount")
	}
	for i := 0; i < 3; i++ {
		tk, err := srv.Submit(d, plan(), ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"progopt_queries_completed 3",
		"progopt_plan_cache_hits 2",
		"progopt_plan_cache_misses 1",
		"progopt_feedback_stores 3",
		`progopt_query_latency_cycles{quantile="0.5"}`,
		`progopt_query_latency_cycles{quantile="0.99"}`,
		"progopt_query_latency_cycles_count 3",
		"progopt_query_latency_p95_millis",
		"progopt_makespan_millis",
		"# TYPE progopt_query_latency_cycles summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Exposition must be reproducible: a second write renders byte-identically.
	var buf2 bytes.Buffer
	if err := srv.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated exposition diverges")
	}
}

// TestTraceServiceEvents checks a traced served workload lands admission and
// completion events on the service track with monotone stamps per event kind.
func TestTraceServiceEvents(t *testing.T) {
	e, d, _ := traceSetup(t, 4, false, true)
	defer e.Close()
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tk, err := srv.Submit(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("l_quantity", CmpLT, 10).
		Sum("l_extendedprice * l_discount"),
		ExecOptions{Mode: ModeMicroAdaptive, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	var svc *trace.Track
	for _, trk := range e.tr.rec.Tracks() {
		if trk.Name() == "service" {
			svc = trk
		}
	}
	if svc == nil {
		t.Fatal("no service track")
	}
	seen := map[string]int{}
	for _, ev := range svc.Events() {
		seen[ev.Name]++
	}
	for _, want := range []string{"submit", "admit", "query"} {
		if seen[want] == 0 {
			t.Errorf("service track lacks %q events (have %v)", want, seen)
		}
	}
}
