package stats

import (
	"math"
	"testing"
	"testing/quick"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

func uniformCol(t *testing.T, n int) *columnar.Column {
	t.Helper()
	rng := datagen.NewRNG(1)
	return columnar.NewInt64("u", datagen.UniformInt64(rng, n, 0, 999))
}

func TestBuildHistogramValidation(t *testing.T) {
	if _, err := BuildHistogram(nil, 0, 8); err == nil {
		t.Error("nil column accepted")
	}
	if _, err := BuildHistogram(columnar.NewInt64("e", nil), 0, 8); err == nil {
		t.Error("empty column accepted")
	}
	h, err := BuildHistogram(uniformCol(t, 100), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 100 {
		t.Errorf("sampled %d rows, want all 100", h.Rows())
	}
}

func TestHistogramUniformEstimates(t *testing.T) {
	h, err := BuildHistogram(uniformCol(t, 100000), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []float64{100, 250, 500, 900} {
		want := (bound + 1) / 1000
		if got := h.EstimateLE(bound); math.Abs(got-want) > 0.02 {
			t.Errorf("EstimateLE(%v) = %v, want ~%v", bound, got, want)
		}
	}
	if got := h.EstimateLE(-5); got != 0 {
		t.Errorf("below-range estimate %v", got)
	}
	if got := h.EstimateLE(5000); got != 1 {
		t.Errorf("above-range estimate %v", got)
	}
}

func TestHistogramOperators(t *testing.T) {
	h, err := BuildHistogram(uniformCol(t, 100000), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	le := h.Estimate(exec.LE, 500)
	ge := h.Estimate(exec.GE, 500)
	if math.Abs(le+ge-1) > 0.01 {
		t.Errorf("LE+GE = %v, want ~1", le+ge)
	}
	eq := h.Estimate(exec.EQ, 500)
	if eq <= 0 || eq > 0.05 {
		t.Errorf("EQ estimate %v implausible for 1000-value domain", eq)
	}
	if lt := h.Estimate(exec.LT, 500); lt > le {
		t.Error("LT estimate above LE")
	}
}

func TestHistogramComplementProperty(t *testing.T) {
	h, err := BuildHistogram(uniformCol(t, 50000), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		bound := float64(raw % 1000)
		le := h.Estimate(exec.LE, bound)
		gt := h.Estimate(exec.GT, bound)
		return le >= 0 && le <= 1 && math.Abs(le+gt-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMonotone(t *testing.T) {
	h, err := BuildHistogram(uniformCol(t, 50000), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for b := 0.0; b <= 1000; b += 25 {
		got := h.EstimateLE(b)
		if got < prev-1e-12 {
			t.Fatalf("EstimateLE not monotone at %v: %v after %v", b, got, prev)
		}
		prev = got
	}
}

// TestStaleSampleGoesWrong is the premise of the whole paper: a histogram
// built from the bulk-load prefix misestimates a weakly clustered column.
func TestStaleSampleGoesWrong(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 100000, Seed: 4})
	ship := d.Lineitem.Column("l_shipdate")
	// Sample the first 5% (early ship dates only).
	h, err := BuildHistogram(ship, 5000, 64)
	if err != nil {
		t.Fatal(err)
	}
	cut := d.ShipdateCutoff(0.5) // true selectivity 50%
	est := h.EstimateLE(float64(cut))
	if est < 0.95 {
		t.Errorf("stale prefix sample estimated %v; expected ~1 (everything early qualifies)", est)
	}
	// A full-column histogram gets it right.
	hFull, err := BuildHistogram(ship, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := hFull.EstimateLE(float64(cut)); math.Abs(got-0.5) > 0.05 {
		t.Errorf("full histogram estimated %v, want ~0.5", got)
	}
}

func TestCatalogAndStaticOrder(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 50000, Seed: 5})
	d = d.ReorderLineitem(tpch.OrderingRandom, 6)
	cat, err := BuildCatalog(d.Lineitem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Histogram("l_quantity") == nil {
		t.Fatal("catalog missing column")
	}
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	perm, sels, err := cat.StaticOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != len(q.Ops) {
		t.Fatalf("perm %v wrong length", perm)
	}
	// The static order must be ascending in the estimated selectivities.
	for i := 1; i < len(perm); i++ {
		if sels[perm[i]] < sels[perm[i-1]]-1e-12 {
			t.Fatalf("static order not ascending: %v (sels %v)", perm, sels)
		}
	}
	// On random (stationary) data with full-table stats, the static order
	// should agree with true ascending selectivity on the first pick.
	trueSels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		trueSels[i] = op.(*exec.Predicate).TrueSelectivity()
	}
	bestTrue := 0
	for i := range trueSels {
		if trueSels[i] < trueSels[bestTrue] {
			bestTrue = i
		}
	}
	if perm[0] != bestTrue {
		t.Errorf("static optimizer picked %d first, true best is %d (est %v, true %v)",
			perm[0], bestTrue, sels, trueSels)
	}
	// Estimated and true selectivities agree within histogram resolution.
	for i := range trueSels {
		if math.Abs(sels[i]-trueSels[i]) > 0.05 {
			t.Errorf("predicate %d: estimated %v, true %v", i, sels[i], trueSels[i])
		}
	}
}

func TestStaticOrderNoPredicates(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 1000, Seed: 5})
	cat, err := BuildCatalog(d.Lineitem, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &exec.Query{Table: d.Lineitem, Ops: []exec.Op{&fakeOp{}}}
	if _, _, err := cat.StaticOrder(q); err == nil {
		t.Error("predicate-less query accepted")
	}
}

type fakeOp struct{}

func (f *fakeOp) Name() string                { return "fake" }
func (f *fakeOp) Width() int                  { return 8 }
func (f *fakeOp) Eval(_ *cpu.CPU, _ int) bool { return true }
func (f *fakeOp) EvalBatch(_ *cpu.CPU, _ int, sel, out []int32) []int32 {
	return append(out, sel...)
}
